"""The scheme-agnostic storage front-end.

:class:`StorageService` is the public face of the repository: one
put/get/delete/fail/repair API over a :class:`~repro.storage.cluster.StorageCluster`
and *any* redundancy scheme implementing the
:class:`~repro.schemes.base.RedundancyScheme` protocol -- alpha entanglement
or any of the paper's stripe-code baselines.  Services are opened from a
:class:`StorageConfig`::

    from repro import StorageConfig, StorageService

    service = StorageService.open(StorageConfig(scheme="rs-10-4"))
    service.put("report", payload)
    service.fail_locations(range(3))
    report = service.repair()
    assert service.get("report") == payload

The legacy :class:`~repro.system.entangled_store.EntangledStorageSystem` is a
thin AE-specific shim over this class.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field, replace
from typing import Callable, ContextManager, Dict, Iterable, Iterator, List, Optional, Tuple, Union

import repro.schemes as schemes
from repro.core.blocks import join_blocks
from repro.core.dynamic import EpochHistory, ParameterEpoch
from repro.core.encoder import DEFAULT_BLOCK_SIZE
from repro.core.parameters import AEParameters
from repro.core.xor import Payload, payload_to_bytes
from repro.exceptions import InvalidParametersError, UnknownBlockError
from repro.schemes.base import RedundancyScheme, SchemeCapabilities
from repro.storage import placement as placement_registry
from repro.storage.backends import decode_block_id, encode_block_id, write_json
from repro.storage.cluster import StorageCluster
from repro.storage.placement import PlacementPolicy
from repro.storage.topology import Topology
from repro.storage.wal import WAL_NAME, MetadataWAL, WalGroup
from repro.system.transitions import (
    TransitionEngine,
    TransitionPlan,
    TransitionReport,
)

#: Number of blocks encoded per batch by :meth:`StorageService.put_stream`.
DEFAULT_BATCH_BLOCKS = 256

#: Locations in a cluster when neither the config nor a manifest names one.
DEFAULT_LOCATION_COUNT = 100

#: Name of the service manifest inside a durable ``data_dir``.
MANIFEST_NAME = "manifest.json"

#: Manifest format version (bumped on incompatible layout changes).
MANIFEST_FORMAT = 1

#: WAL size (bytes) past which a mutation triggers a checkpoint that
#: collapses the log back into ``manifest.json``.
DEFAULT_WAL_CHECKPOINT_BYTES = 1 << 20


def _encode_id_runs(data_ids: List[object]) -> List[object]:
    """Run-length encode a document's block ids for the manifest.

    Data ids are consecutive within a document (``d-5, d-6, ...`` for AE;
    ``s[3,0], s[3,1], ...`` within a stripe), so the catalogue stores
    ``["d-5", 120]`` (120 ids starting at ``d-5``) instead of 120 strings --
    the manifest stays O(documents + stripes), not O(blocks).
    """
    from repro.schemes.stripe import StripeBlockId
    from repro.core.blocks import DataId

    def successor(prev: object, current: object) -> bool:
        if isinstance(prev, DataId) and isinstance(current, DataId):
            return current.index == prev.index + 1
        if isinstance(prev, StripeBlockId) and isinstance(current, StripeBlockId):
            return (
                current.stripe == prev.stripe
                and current.position == prev.position + 1
            )
        return False

    entries: List[object] = []
    run_start: Optional[object] = None
    run_length = 0
    previous: Optional[object] = None
    for block_id in data_ids:
        if previous is not None and successor(previous, block_id):
            run_length += 1
        else:
            if run_start is not None:
                key = encode_block_id(run_start)
                entries.append(key if run_length == 1 else [key, run_length])
            run_start, run_length = block_id, 1
        previous = block_id
    if run_start is not None:
        key = encode_block_id(run_start)
        entries.append(key if run_length == 1 else [key, run_length])
    return entries


def _decode_id_runs(entries: List[object]) -> List[object]:
    """Inverse of :func:`_encode_id_runs`."""
    from repro.schemes.stripe import StripeBlockId
    from repro.core.blocks import DataId

    data_ids: List[object] = []
    for entry in entries:
        if isinstance(entry, str):
            data_ids.append(decode_block_id(entry))
            continue
        key, count = entry
        start = decode_block_id(key)
        if isinstance(start, DataId):
            data_ids.extend(DataId(start.index + i) for i in range(int(count)))
        elif isinstance(start, StripeBlockId):
            data_ids.extend(
                StripeBlockId(start.stripe, start.position + i)
                for i in range(int(count))
            )
        else:
            raise InvalidParametersError(
                f"manifest id run may not start at {key!r}"
            )
    return data_ids


@dataclass
class StoredDocument:
    """Metadata of one document stored in the system."""

    name: str
    data_ids: List[object]
    length: int

    @property
    def block_count(self) -> int:
        return len(self.data_ids)


@dataclass(frozen=True)
class StorageConfig:
    """Configuration of a :class:`StorageService`.

    ``scheme`` is either a registry identifier (``"ae-3-2-5"``, ``"rs-10-4"``,
    ``"lrc-azure"``, ...) or an already-built scheme instance.

    ``topology`` describes the cluster's spatial layout: a
    :class:`~repro.storage.topology.Topology`, a compact spec string
    (``"sites=3,racks=2,nodes=4"``), a topology JSON file path or a bare
    location count.  ``placement`` is either a policy name from the
    :mod:`repro.storage.placement` registry (``"spread-domains"``,
    ``"weighted"``, ...) -- resolved over the topology with the scheme's
    parameters, and persisted in the manifest so a durable reopen restores
    it automatically -- or an already-built :class:`PlacementPolicy`
    instance (which a reopen must supply again).  The flat
    ``location_count=N`` form remains a shim for a single-site topology.

    ``backend`` names a storage backend from :mod:`repro.storage.backends`
    (``"memory"``, ``"disk"``, ``"segment"``); the persistent backends need
    ``data_dir``, the root directory that holds one sub-root per location
    plus the service manifest.  Opening a config whose ``data_dir`` already
    contains a manifest *reopens* the stored service: placements, documents,
    the topology and the scheme's write position are restored (see
    ``docs/persistence.md`` and ``docs/topology.md``).

    ``shards`` requests a *sharded* namespace: pass the config to
    :meth:`repro.system.sharding.ShardedStorageService.open` and the
    federation routes documents across that many independent services (each
    with its own cluster, WAL and thread pool).  A plain
    :class:`StorageService` accepts only ``shards=None`` / ``shards=1`` --
    it *is* one shard.

    ``wal`` selects how a durable service persists metadata mutations:
    ``True`` (the default) appends group-committed records to ``wal.log``
    and checkpoints into ``manifest.json`` once the log passes
    ``wal_checkpoint_bytes``; ``False`` restores the PR 4 behaviour of
    rewriting the whole manifest after every mutation (kept as the
    baseline the WAL is benchmarked against).  Both modes survive a crash
    at any point; see ``docs/persistence.md``.
    """

    scheme: Union[str, RedundancyScheme] = schemes.DEFAULT_SCHEME
    #: ``None`` means "default" (:data:`DEFAULT_LOCATION_COUNT`) -- or, on a
    #: durable reopen, "whatever the manifest says".  An explicit value that
    #: contradicts the manifest is rejected.
    location_count: Optional[int] = None
    block_size: int = DEFAULT_BLOCK_SIZE
    placement: Optional[Union[str, PlacementPolicy]] = None
    cluster: Optional[StorageCluster] = None
    seed: int = 0
    batch_blocks: int = DEFAULT_BATCH_BLOCKS
    backend: str = "memory"
    data_dir: Optional[str] = None
    fsync: bool = False
    cache_blocks: Optional[int] = None
    topology: Optional[Union[str, int, Topology]] = None
    wal: bool = True
    wal_checkpoint_bytes: int = DEFAULT_WAL_CHECKPOINT_BYTES
    #: Shard count for :class:`~repro.system.sharding.ShardedStorageService`;
    #: ``None`` (or 1) means an unsharded service.
    shards: Optional[int] = None

    def resolve_scheme(self) -> RedundancyScheme:
        if isinstance(self.scheme, RedundancyScheme):
            return self.scheme
        return schemes.get(self.scheme, block_size=self.block_size)

    def resolve_topology(self) -> Optional[Topology]:
        """The explicit topology of this config, ``None`` when unspecified."""
        if self.topology is not None:
            return Topology.resolve(self.topology)
        if self.cluster is not None:
            return self.cluster.topology
        if isinstance(self.placement, PlacementPolicy):
            return self.placement.topology
        return None


@dataclass
class ServiceStatus:
    """Snapshot of the health of a storage service."""

    scheme: str
    blocks: int
    unavailable_blocks: int
    unavailable_data_blocks: int
    locations: int
    unavailable_locations: int
    documents: int
    bytes_stored: int
    cache_hits: int = 0
    cache_misses: int = 0

    def summary(self) -> str:
        return (
            f"[{self.scheme}] {self.blocks} blocks on {self.locations} locations "
            f"({self.unavailable_locations} down); {self.unavailable_blocks} blocks "
            f"unreachable ({self.unavailable_data_blocks} data); "
            f"{self.documents} documents, {self.bytes_stored} bytes"
        )


@dataclass
class ServiceRepairReport:
    """Outcome of a scheme-agnostic repair run."""

    scheme: str
    repaired: List[object] = field(default_factory=list)
    unrecovered: List[object] = field(default_factory=list)
    blocks_read: int = 0
    rounds: int = 0
    data_loss: int = 0

    @property
    def repaired_count(self) -> int:
        return len(self.repaired)

    def summary(self) -> str:
        return (
            f"[{self.scheme}] repaired {self.repaired_count} blocks in "
            f"{self.rounds} rounds ({self.blocks_read} reads); "
            f"data loss {self.data_loss}, {len(self.unrecovered)} blocks unrecovered"
        )


class StorageService:
    """High-level put/get/delete/repair interface over any redundancy scheme."""

    def __init__(
        self,
        scheme: RedundancyScheme,
        cluster: StorageCluster,
        batch_blocks: int = DEFAULT_BATCH_BLOCKS,
        data_dir: Optional[str] = None,
        fsync: bool = False,
        seed: int = 0,
        custom_placement: bool = False,
        placement_spec: Optional[str] = None,
        wal: bool = True,
        wal_checkpoint_bytes: int = DEFAULT_WAL_CHECKPOINT_BYTES,
    ) -> None:
        if batch_blocks < 1:
            raise ValueError("batch_blocks must be at least 1")
        if data_dir is not None and not all(
            store.backend.persistent for store in cluster.locations()
        ):
            raise InvalidParametersError(
                "data_dir requires a persistent backend ('disk' or 'segment'); "
                "a volatile backend would leave a manifest no reopen can honour"
            )
        self._scheme = scheme
        self._cluster = cluster
        self._batch_blocks = batch_blocks
        self._documents: Dict[str, StoredDocument] = {}
        self._data_dir = data_dir
        self._fsync = fsync
        self._seed = seed
        self._custom_placement = custom_placement
        self._placement_spec = placement_spec
        self._closed = False
        # Scheme/catalogue mutations are serialised by one lock: entanglement
        # is a single helical lattice with a monotonic write position, so
        # encodes cannot proceed in parallel anyway -- concurrency lives in
        # the block writes and the group-committed WAL, both outside it.
        self._state_lock = threading.RLock()
        self._checkpoint_lock = threading.Lock()
        self._mutation_seq = 0
        self._wal: Optional[MetadataWAL] = None
        self._wal_enabled = wal
        self._wal_checkpoint_bytes = int(wal_checkpoint_bytes)
        # Live-transition state: while a cross-family migration is in
        # flight, ``_transition.pending`` names the documents still encoded
        # under ``_fallback`` (the retained source scheme); reads of those
        # route through the fallback, everything else through ``_scheme``.
        self._transition: Optional[TransitionPlan] = None
        self._fallback: Optional[RedundancyScheme] = None
        # AE services carry the parameter-epoch ledger of Sec. III-B: every
        # live alpha raise appends an epoch, so tooling can answer "which
        # parameters protect block i" across the scheme's whole history.
        params = getattr(scheme, "params", None)
        self._epochs: Optional[EpochHistory] = (
            EpochHistory.starting_with(params)
            if isinstance(params, AEParameters)
            else None
        )

    @classmethod
    def open(
        cls, config: Optional[StorageConfig] = None, **overrides: object
    ) -> "StorageService":
        """Open a service from a config (plus keyword overrides).

        With a persistent ``backend`` and a ``data_dir`` that already holds a
        manifest, this *reopens* the stored service: the cluster directory is
        rebuilt from the backends, the document catalogue and the scheme's
        write position are restored from the manifest, and the returned
        service serves byte-exact reads (and repair, and further writes) of
        the pre-existing data.
        """
        config = replace(config or StorageConfig(), **overrides)
        if config.shards not in (None, 1):
            raise InvalidParametersError(
                f"shards={config.shards} needs the sharded front-end; open "
                "the config with ShardedStorageService.open "
                "(repro.system.sharding) instead"
            )
        scheme = config.resolve_scheme()
        manifest = cls._load_manifest(config.data_dir)
        plan: Optional[TransitionPlan] = None
        if manifest is not None and config.data_dir is not None:
            plan = TransitionPlan.load(config.data_dir)
        if manifest is not None:
            stored_scheme = manifest.get("scheme")
            if stored_scheme != scheme.scheme_id:
                in_flight = (
                    plan is not None
                    and stored_scheme in (plan.source, plan.target)
                    and scheme.scheme_id in (plan.source, plan.target)
                )
                if in_flight:
                    # A crash mid-transition: the manifest names the scheme
                    # that owns the catalogue right now; open under it, then
                    # resume the interrupted switch below.
                    scheme = schemes.get(
                        str(stored_scheme), block_size=scheme.block_size
                    )
                else:
                    raise InvalidParametersError(
                        f"data_dir {config.data_dir!r} holds a {stored_scheme!r} "
                        f"service, not {scheme.scheme_id!r}"
                    )
            # Compare against the resolved scheme's block size: a config may
            # carry a scheme *instance* whose block size differs from the
            # config field (which the instance path never reads).
            if int(manifest.get("block_size", scheme.block_size)) != scheme.block_size:
                raise InvalidParametersError(
                    f"data_dir {config.data_dir!r} was written with block size "
                    f"{manifest.get('block_size')}, not {scheme.block_size}"
                )
            opening_backend = (
                config.cluster.backend_spec
                if config.cluster is not None
                else config.backend
            )
            stored_backend = manifest.get("backend", opening_backend)
            if stored_backend != opening_backend:
                raise InvalidParametersError(
                    f"data_dir {config.data_dir!r} was written with the "
                    f"{stored_backend!r} backend, not {opening_backend!r}"
                )
        seed = config.seed
        custom_placement = (
            isinstance(config.placement, PlacementPolicy)
            or config.cluster is not None
        )
        placement_spec = (
            config.placement if isinstance(config.placement, str) else None
        )
        topology = config.resolve_topology()
        if manifest is not None:
            seed = int(manifest.get("seed", seed))
            # Placement only steers *new* writes (reads follow the block
            # directory), but silently switching policies on reopen would
            # scatter a curated layout -- demand the original policy back.
            # Registry-named policies are stored in the manifest and restored
            # automatically; policy *instances* must be supplied again.
            if bool(manifest.get("custom_placement", False)) and not custom_placement:
                raise InvalidParametersError(
                    f"data_dir {config.data_dir!r} was written with a custom "
                    "placement policy; reopen it with the same placement "
                    "(StorageConfig(placement=...))"
                )
            if placement_spec is None and not custom_placement:
                stored_spec = manifest.get("placement_spec")
                placement_spec = str(stored_spec) if stored_spec else None
            stored_topology = manifest.get("topology")
            if stored_topology is not None:
                stored_topology = Topology.from_dict(stored_topology)
                if topology is not None and topology != stored_topology:
                    raise InvalidParametersError(
                        f"data_dir {config.data_dir!r} was written with a "
                        f"different topology ({stored_topology.describe()}); "
                        "reopen it with the stored topology or none at all"
                    )
                if config.cluster is None:
                    topology = stored_topology
        cluster = config.cluster
        if cluster is None:
            location_count = config.location_count
            if topology is not None:
                if (
                    location_count is not None
                    and location_count != topology.node_count
                ):
                    raise InvalidParametersError(
                        f"location_count={location_count} contradicts the "
                        f"topology ({topology.node_count} nodes)"
                    )
                location_count = topology.node_count
            if manifest is not None:
                stored_locations = int(
                    manifest.get("location_count", DEFAULT_LOCATION_COUNT)
                )
                if location_count is not None and location_count != stored_locations:
                    raise InvalidParametersError(
                        f"data_dir {config.data_dir!r} was written with "
                        f"{stored_locations} locations, not {location_count}"
                    )
                location_count = stored_locations
            if location_count is None:
                location_count = DEFAULT_LOCATION_COUNT
            if isinstance(config.placement, PlacementPolicy):
                placement = config.placement
            elif placement_spec is not None:
                placement = placement_registry.get(
                    placement_spec,
                    topology if topology is not None else location_count,
                    params=getattr(scheme, "params", None),
                    seed=seed,
                )
            else:
                placement = scheme.default_placement(
                    topology if topology is not None else location_count, seed=seed
                )
            cluster = StorageCluster(
                placement=placement,
                backend=config.backend,
                root=config.data_dir,
                cache_blocks=config.cache_blocks,
                topology=topology if topology is not None else location_count,
                fsync=config.fsync,
            )
        service = cls(
            scheme,
            cluster,
            batch_blocks=config.batch_blocks,
            data_dir=config.data_dir,
            fsync=config.fsync,
            seed=seed,
            custom_placement=custom_placement,
            placement_spec=placement_spec,
            wal=config.wal,
            wal_checkpoint_bytes=config.wal_checkpoint_bytes,
        )
        wal_groups: List[WalGroup] = []
        if config.data_dir is not None:
            os.makedirs(config.data_dir, exist_ok=True)
            service._wal = MetadataWAL(
                os.path.join(config.data_dir, WAL_NAME), fsync=config.fsync
            )
            wal_groups = service._wal.recovered_groups()
        service._transition = plan
        scheme_state: Optional[Dict[str, object]] = None
        if manifest is not None:
            for name, entry in manifest.get("documents", {}).items():
                service._documents[name] = StoredDocument(
                    name=name,
                    data_ids=_decode_id_runs(entry["data_ids"]),
                    length=int(entry["length"]),
                )
            scheme_state = manifest.get("scheme_state", {})
            stored_epochs = manifest.get("epochs")
            if stored_epochs is not None and service._epochs is not None:
                service._epochs = EpochHistory(
                    [
                        ParameterEpoch(int(first), AEParameters(int(a), int(s), int(p)))
                        for first, a, s, p in stored_epochs
                    ]
                )
        if wal_groups:
            # Reopen = last checkpoint + committed WAL tail (a crash may have
            # happened any time after the last checkpoint; the log holds the
            # mutations the manifest has not absorbed yet).
            scheme_state = service._replay_wal(wal_groups, scheme_state)
        if scheme_state is not None:
            scheme.restore_state(scheme_state, cluster.try_get_block)
        if service._transition is not None:
            # Finish what the crash interrupted before serving anything: the
            # plan plus the replayed WAL name exactly the remaining work.
            service._resume_transition()
        if config.data_dir is not None:
            # Collapse the replayed tail into a fresh checkpoint so the next
            # crash window starts from an empty log.
            service._checkpoint()
        return service

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    @property
    def data_dir(self) -> Optional[str]:
        """Root directory of a durable service, ``None`` when volatile."""
        return self._data_dir

    @staticmethod
    def _load_manifest(data_dir: Optional[str]) -> Optional[Dict[str, object]]:
        if data_dir is None:
            return None
        path = os.path.join(data_dir, MANIFEST_NAME)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError as exc:
            # Refusing loudly beats reopening with an empty catalogue and
            # scattering new writes over the old blocks.
            raise InvalidParametersError(
                f"corrupt service manifest {path!r}: {exc}; the block data is "
                "still on disk -- restore the manifest from a backup or "
                "rebuild it before reopening"
            ) from exc
        if int(manifest.get("format", 0)) != MANIFEST_FORMAT:
            raise InvalidParametersError(
                f"unsupported manifest format in {path!r}: {manifest.get('format')!r}"
            )
        return manifest

    def _sync_manifest(self) -> None:
        """Atomically persist the service catalogue next to the block data.

        Called after every mutating operation on a durable service, so a
        process crash between writes loses at most the in-flight document,
        never the catalogue of completed ones.  With ``fsync`` enabled the
        manifest is forced to stable storage, extending the guarantee to
        power loss.
        """
        if self._data_dir is None:
            return
        os.makedirs(self._data_dir, exist_ok=True)
        manifest = {
            "format": MANIFEST_FORMAT,
            "scheme": self._scheme.scheme_id,
            "block_size": self._scheme.block_size,
            "location_count": self._cluster.location_count,
            "backend": self._cluster.backend_spec,
            "seed": self._seed,
            "custom_placement": self._custom_placement,
            "scheme_state": self._scheme.state(),
            "documents": {
                name: {
                    "data_ids": _encode_id_runs(document.data_ids),
                    "length": document.length,
                }
                for name, document in self._documents.items()
            },
        }
        if not self._cluster.topology.is_flat():
            manifest["topology"] = self._cluster.topology.to_dict()
        if self._placement_spec is not None:
            manifest["placement_spec"] = self._placement_spec
        if self._epochs is not None:
            manifest["epochs"] = [
                [epoch.first_index, epoch.params.alpha, epoch.params.s, epoch.params.p]
                for epoch in self._epochs
            ]
        write_json(
            os.path.join(self._data_dir, MANIFEST_NAME), manifest, fsync=self._fsync
        )

    def _replay_wal(
        self,
        groups: List[WalGroup],
        scheme_state: Optional[Dict[str, object]],
    ) -> Optional[Dict[str, object]]:
        """Apply the committed WAL tail on top of the manifest checkpoint.

        Replay is idempotent (``put_doc`` overwrites, ``delete_doc`` pops if
        present, the newest ``scheme_state`` wins), which is what makes the
        crash window between "manifest written" and "WAL reset" safe: the
        tail is simply applied again over the checkpoint that already
        contains it.  Returns the scheme state to restore.
        """
        state = scheme_state
        state_seq = -1
        # Which scheme the current WAL epoch was written under.  Normally it
        # always matches ``_scheme``; across a crash-interrupted transition
        # the tail may start with records bound to the other side of the
        # switch, whose scheme-state snapshots must not be restored into the
        # primary scheme.
        binding_scheme: Optional[str] = None
        for group in groups:
            for op in group.ops:
                kind = op.get("op")
                if kind == "put_doc":
                    name = str(op["name"])
                    self._documents[name] = StoredDocument(
                        name=name,
                        data_ids=_decode_id_runs(list(op["data_ids"])),  # type: ignore[arg-type]
                        length=int(op["length"]),  # type: ignore[arg-type]
                    )
                    if self._transition is not None:
                        self._transition.pending.discard(name)
                elif kind == "delete_doc":
                    self._documents.pop(str(op["name"]), None)
                    if self._transition is not None:
                        self._transition.pending.discard(str(op["name"]))
                elif kind == "transition_doc":
                    # A document re-encoded under the transition target: the
                    # catalogue now points at target-scheme blocks and the
                    # plan no longer owes the document a migration.
                    name = str(op["name"])
                    self._documents[name] = StoredDocument(
                        name=name,
                        data_ids=_decode_id_runs(list(op["data_ids"])),  # type: ignore[arg-type]
                        length=int(op["length"]),  # type: ignore[arg-type]
                    )
                    if self._transition is not None:
                        self._transition.pending.discard(name)
                    seq = int(op.get("seq", 0))  # type: ignore[arg-type]
                    if seq >= state_seq:
                        state = op.get("state", {})  # type: ignore[assignment]
                        state_seq = seq
                elif kind == "scheme_state":
                    if binding_scheme not in (None, self._scheme.scheme_id):
                        continue  # a snapshot of the transition's other side
                    seq = int(op.get("seq", 0))  # type: ignore[arg-type]
                    if seq >= state_seq:
                        state = op.get("state", {})  # type: ignore[assignment]
                        state_seq = seq
                elif kind == "placement":
                    self._check_wal_binding(op)
                    if "scheme" in op:
                        binding_scheme = str(op["scheme"])
                else:
                    raise InvalidParametersError(
                        f"unknown WAL record type {kind!r} in "
                        f"{self._data_dir!r}; the log was written by an "
                        "incompatible version or corrupted"
                    )
        return state

    def _check_wal_binding(self, op: Dict[str, object]) -> None:
        """Reject a WAL tail that was written by a different service."""
        if "scheme" not in op:
            return  # informational placement record (e.g. repair relocations)
        stored_scheme = op.get("scheme")
        stored_block_size = int(op.get("block_size", self._scheme.block_size))  # type: ignore[arg-type]
        stored_backend = op.get("backend", self._cluster.backend_spec)
        allowed_schemes = {self._scheme.scheme_id}
        if self._transition is not None:
            # Mid-transition, the log tail may straddle the scheme switch:
            # epochs bound to either side of the recorded plan are ours.
            allowed_schemes.update(
                (self._transition.source, self._transition.target)
            )
        if (
            stored_scheme not in allowed_schemes
            or stored_block_size != self._scheme.block_size
            or stored_backend != self._cluster.backend_spec
        ):
            raise InvalidParametersError(
                f"WAL in {self._data_dir!r} was written by a "
                f"{stored_scheme!r} service (block size {stored_block_size}, "
                f"backend {stored_backend!r}); it does not belong to this "
                f"{self._scheme.scheme_id!r} service"
            )

    def _binding_record(self) -> Dict[str, object]:
        """The header record opening every fresh WAL epoch."""
        return {
            "op": "placement",
            "scheme": self._scheme.scheme_id,
            "block_size": self._scheme.block_size,
            "backend": self._cluster.backend_spec,
            "location_count": self._cluster.location_count,
            "seed": self._seed,
            "custom_placement": self._custom_placement,
        }

    def _next_mutation(self) -> int:
        """Monotonic mutation sequence (call with the state lock held)."""
        self._mutation_seq += 1
        return self._mutation_seq

    def _document_ops(self, document: StoredDocument) -> List[Dict[str, object]]:
        """WAL records of one put (call with the state lock held).

        The scheme state is snapshotted in the same critical section as the
        encode, so replaying the newest surviving snapshot always covers
        every catalogued document's blocks.
        """
        seq = self._next_mutation()
        return [
            {
                "op": "put_doc",
                "name": document.name,
                "data_ids": _encode_id_runs(document.data_ids),
                "length": document.length,
            },
            {"op": "scheme_state", "state": self._scheme.state(), "seq": seq},
        ]

    def _commit_meta(self, ops: List[Dict[str, object]]) -> None:
        """Durably record one mutation's metadata.

        WAL mode appends one group-committed batch of records (concurrent
        mutators share a single fsync); legacy mode (``wal=False``) rewrites
        the whole manifest, PR 4 style.  Volatile services skip both.
        """
        if self._data_dir is None:
            return
        wal = self._wal
        if not self._wal_enabled or wal is None:
            with self._state_lock:
                self._sync_manifest()
            return
        if wal.size_bytes == 0:
            # Open the fresh epoch with the binding header; a duplicate from
            # a racing mutator is harmless (replay just validates it twice).
            ops = [self._binding_record()] + ops
        wal.commit(ops)
        if wal.size_bytes >= self._wal_checkpoint_bytes:
            self._checkpoint()

    def _checkpoint(self) -> None:
        """Collapse the WAL into ``manifest.json`` and reset the log.

        Runs under the state lock: every mutation that updated the catalogue
        before the snapshot is inside the manifest, and none can slip in
        between the snapshot and the reset.  A mutator that has already left
        the critical section but not yet committed its records re-appends
        them *after* the reset -- replay is idempotent, so re-applying them
        over a checkpoint that already contains them is safe.
        """
        if self._data_dir is None:
            return
        with self._checkpoint_lock:
            with self._state_lock:
                self._sync_manifest()
                if self._transition is not None:
                    # The plan must be at least as new as the manifest before
                    # the WAL (which names the migrated documents) resets.
                    self._save_transition_plan()
                if self._wal is not None:
                    self._wal.reset()

    def _ensure_open(self) -> None:
        if self._closed:
            raise InvalidParametersError(
                "this StorageService has been closed; reopen it with "
                "StorageService.open on the same data_dir"
            )

    def flush(self) -> None:
        """Push buffered writes to the medium and checkpoint the metadata.

        After ``flush`` the manifest alone describes the full catalogue
        (the WAL is empty), so external tooling may read it directly.
        """
        self._cluster.flush()
        self._checkpoint()

    def close(self) -> None:
        """Checkpoint the metadata and close every location's backend.

        After ``close`` the service must not be used; reopen it with
        ``StorageService.open(StorageConfig(scheme=..., backend=...,
        data_dir=...))`` on the same root.  Idempotent.
        """
        if self._closed:
            return
        self._checkpoint()
        if self._wal is not None:
            self._wal.close()
        self._cluster.close()
        self._closed = True

    def __enter__(self) -> "StorageService":
        return self

    def __exit__(self, exc_type: object, exc_value: object, traceback: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def scheme(self) -> RedundancyScheme:
        return self._scheme

    @property
    def capabilities(self) -> SchemeCapabilities:
        return self._scheme.capabilities()

    @property
    def cluster(self) -> StorageCluster:
        return self._cluster

    @property
    def topology(self) -> Topology:
        """The cluster's site -> rack -> node layout."""
        return self._cluster.topology

    @property
    def block_size(self) -> int:
        return self._scheme.block_size

    @property
    def batch_blocks(self) -> int:
        return self._batch_blocks

    @property
    def documents(self) -> Dict[str, StoredDocument]:
        with self._state_lock:
            return dict(self._documents)

    @property
    def transition(self) -> Optional[TransitionPlan]:
        """The in-flight transition plan, ``None`` when settled."""
        return self._transition

    @property
    def epoch_history(self) -> Optional[EpochHistory]:
        """Parameter epochs of an AE service (``None`` for stripe codes).

        Every live alpha raise appends an epoch at the lattice head:
        ``params_at(i)`` answers which setting position ``i`` was
        *entangled* under.  (The raise also back-fills the new strand
        classes over earlier epochs, so the newest epoch's parameters
        protect the whole lattice.)
        """
        return self._epochs

    def status(self) -> ServiceStatus:
        stats = self._cluster.stats()
        unavailable = self._cluster.unavailable_blocks()
        return ServiceStatus(
            scheme=self._scheme.scheme_id,
            blocks=stats.blocks,
            unavailable_blocks=len(unavailable),
            unavailable_data_blocks=sum(
                1 for block_id in unavailable if self._scheme.is_data_block(block_id)
            ),
            locations=stats.locations,
            unavailable_locations=stats.locations - stats.available_locations,
            documents=len(self._documents),
            bytes_stored=stats.bytes_stored,
            cache_hits=stats.cache_hits,
            cache_misses=stats.cache_misses,
        )

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, name: str, data: bytes) -> StoredDocument:
        """Encode and store a document, returning its handle.

        Re-using a name replaces the document: for erasable schemes the
        blocks of the previous version are deleted once the new version is
        fully stored.
        """
        self._ensure_open()
        with self._state_lock:
            # Encode *and* block write share the critical section: the
            # lattice has one monotonic write position, and any scheme-state
            # snapshot (WAL record or checkpoint) taken under this lock must
            # only ever cover encodes whose blocks are already on the medium
            # -- restore refetches the strand heads from storage.
            part = self._scheme.encode(data)
            self._cluster.put_many(part.blocks)
            document = StoredDocument(
                name=name, data_ids=part.data_ids, length=len(data)
            )
            previous = self._documents.get(name)
            previous_scheme = self._scheme_for(name)
            self._documents[name] = document
            if self._transition is not None:
                # An overwrite supersedes any owed migration: the new
                # version is already target-encoded.
                self._transition.pending.discard(name)
            ops = self._document_ops(document)
        # The metadata commit runs outside the lock: that is where
        # concurrent mutators pile up and the WAL batches their fsyncs
        # into one group commit.
        self._commit_meta(ops)
        # Catalogue the new version before deleting the old one: a crash in
        # between leaks the old version's blocks as orphans, but never loses
        # a committed document.
        if previous_scheme is self._scheme:
            self._reclaim(previous)
        else:
            self._reclaim(previous, previous_scheme)
        return document

    def _reclaim(
        self,
        previous: Optional[StoredDocument],
        scheme: Optional[RedundancyScheme] = None,
    ) -> None:
        """Delete the blocks of a document version that was just replaced.

        ``scheme`` is the scheme the previous version was encoded under --
        during a transition that may be the fallback, not ``_scheme``.
        """
        scheme = scheme if scheme is not None else self._scheme
        if previous is None or not scheme.capabilities().erasable:
            return
        self._cluster.delete_blocks(scheme.document_blocks(previous.data_ids))

    def put_stream(self, name: str, chunks: Iterable[bytes]) -> StoredDocument:
        """Encode and store a document from an iterable of byte chunks.

        Chunks of arbitrary sizes are re-blocked into batches of up to
        ``batch_blocks`` blocks; each batch is encoded in one scheme pass and
        persisted through the cluster's bulk write path, so at most one batch
        is buffered in memory.  Empty documents and payloads that are not a
        multiple of the block size round-trip byte-exact (the final block is
        zero-padded for encoding; padding is stripped on read).

        If ``chunks`` raises mid-stream the exception propagates and no
        document is recorded, but batches already encoded stay in the scheme
        state (for entanglement the lattice is append-only by design).
        """
        self._ensure_open()
        buffer = bytearray()
        batch_bytes = self._batch_blocks * self.block_size
        data_ids: List[object] = []
        length = 0
        for chunk in chunks:
            buffer += chunk
            length += len(chunk)
            while len(buffer) >= batch_bytes:
                self._ingest_batch(buffer[:batch_bytes], data_ids)
                del buffer[:batch_bytes]
        if buffer:
            self._ingest_batch(buffer, data_ids)
        with self._state_lock:
            document = StoredDocument(name=name, data_ids=data_ids, length=length)
            previous = self._documents.get(name)
            previous_scheme = self._scheme_for(name)
            self._documents[name] = document
            if self._transition is not None:
                self._transition.pending.discard(name)
            ops = self._document_ops(document)
        self._commit_meta(ops)
        if previous_scheme is self._scheme:
            self._reclaim(previous)
        else:
            self._reclaim(previous, previous_scheme)
        return document

    def _ingest_batch(self, payload: bytearray, data_ids: List[object]) -> None:
        with self._state_lock:
            part = self._scheme.encode(payload)
            self._cluster.put_many(part.blocks)
        data_ids.extend(part.data_ids)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get_block(self, block_id: object) -> Payload:
        """Read one block, repairing it through the scheme when unreachable."""
        self._ensure_open()
        with self._state_lock:
            return self._scheme.read_block(block_id, self._cluster.try_get_block)

    def _read_payloads(
        self, data_ids: List[object], scheme: Optional[RedundancyScheme] = None
    ) -> List[Payload]:
        """Bulk-read payloads, repairing unreachable blocks in one batch.

        Healthy blocks arrive through the cluster's grouped
        :meth:`~repro.storage.cluster.StorageCluster.try_get_many`; the
        unreachable ones are rebuilt together in a single scheme repair pass
        over a :meth:`~repro.storage.cluster.StorageCluster.block_source`
        (a *degraded read*: nothing is written back -- restoring redundancy
        is :meth:`repair`'s job).  Blocks the batched pass cannot reach fall
        back to the recursive per-block read, which can chain through
        repairs of the redundancy blocks themselves.

        ``scheme`` selects the scheme that encoded the blocks; mid-
        transition reads of not-yet-migrated documents pass the fallback.
        """
        self._ensure_open()
        scheme = scheme if scheme is not None else self._scheme
        payloads = self._cluster.try_get_many(data_ids)
        missing = [
            data_id
            for data_id, payload in zip(data_ids, payloads)
            if payload is None
        ]
        if missing:
            # Degraded reads walk the scheme's lattice/stripe structures, so
            # they serialise against concurrent encodes; healthy reads (the
            # branch above) never touch the scheme and stay lock-free.
            with self._state_lock:
                outcome = scheme.repair(set(missing), self._cluster.block_source())
                for position, payload in enumerate(payloads):
                    if payload is None:
                        payloads[position] = outcome.recovered.get(data_ids[position])
                return [
                    payload
                    if payload is not None
                    else scheme.read_block(data_id, self._cluster.try_get_block)
                    for data_id, payload in zip(data_ids, payloads)
                ]
        return payloads

    def _scheme_for(self, name: str) -> RedundancyScheme:
        """The scheme that currently encodes document ``name``.

        Outside a transition this is always ``_scheme``.  During a cross-
        family migration, documents still listed in the plan's pending set
        are encoded under the retained source scheme -- the fallback read
        path that keeps every document byte-exact mid-transition.
        """
        plan = self._transition
        if (
            plan is not None
            and self._fallback is not None
            and name in plan.pending
        ):
            return self._fallback
        return self._scheme

    def get(self, name: str) -> bytes:
        """Read a full document back, repairing blocks as needed."""
        # Scheme first, catalogue second: if a transition migrates the
        # document between the two reads we pair the *new* block ids with
        # the old scheme -- harmless, since healthy reads never consult the
        # scheme.  (The concurrent front-end additionally excludes readers
        # from a document's migration window via its stripe locks.)
        scheme = self._scheme_for(name)
        document = self._document(name)
        return join_blocks(
            self._read_payloads(document.data_ids, scheme=scheme), document.length
        )

    #: Back-compat alias of :meth:`get`.
    read = get

    def read_block_bytes(self, data_id: object, length: Optional[int] = None) -> bytes:
        return payload_to_bytes(self.get_block(data_id), length)

    def get_stream(self, name: str) -> Iterator[bytes]:
        """Stream a document back, repairing as needed.

        Blocks are read in batches of up to ``batch_blocks`` through the bulk
        degraded-read path and yielded one at a time, so at most one batch of
        payloads is buffered in memory.
        """
        scheme = self._scheme_for(name)
        document = self._document(name)

        def blocks() -> Iterator[bytes]:
            remaining = document.length
            data_ids = document.data_ids
            for start in range(0, len(data_ids), self._batch_blocks):
                batch = data_ids[start : start + self._batch_blocks]
                for payload in self._read_payloads(batch, scheme=scheme):
                    take = min(remaining, self.block_size)
                    yield payload_to_bytes(payload, take)
                    remaining -= take

        return blocks()

    def verify_document(self, name: str, expected: bytes) -> bool:
        """Convenience used by examples/tests: read back and compare."""
        return self.get(name) == expected

    def _document(self, name: str) -> StoredDocument:
        if name not in self._documents:
            raise UnknownBlockError(f"unknown document {name!r}")
        return self._documents[name]

    def has_document(self, name: str) -> bool:
        """Whether ``name`` is in the catalogue (no blocks are touched)."""
        with self._state_lock:
            return name in self._documents

    # ------------------------------------------------------------------
    # Deletes
    # ------------------------------------------------------------------
    def delete(self, name: str) -> List[object]:
        """Delete a document, returning the block ids physically removed.

        For erasable schemes (all stripe codes) every block backing the
        document -- data, redundancy and stripe padding -- is removed from
        its location and from the cluster's placement index.  For
        entanglement the lattice is append-only, so only the document
        metadata is dropped and the returned list is empty; the blocks keep
        protecting their lattice neighbourhood.
        """
        self._ensure_open()
        with self._state_lock:
            document = self._document(name)
            scheme = self._scheme_for(name)
            del self._documents[name]
            if self._transition is not None:
                self._transition.pending.discard(name)
            seq = self._next_mutation()
            ops: List[Dict[str, object]] = [
                {"op": "delete_doc", "name": name, "seq": seq}
            ]
        # Uncatalogue first, reclaim second (the mirror of put's ordering):
        # a crash mid-delete leaves orphan blocks, never a catalogued
        # document whose payloads are already gone.
        self._commit_meta(ops)
        if not scheme.capabilities().erasable:
            return []
        removed: List[object] = []
        with self._state_lock:
            for block_id in scheme.document_blocks(document.data_ids):
                if self._cluster.knows(block_id):
                    self._cluster.delete_block(block_id)
                    removed.append(block_id)
        return removed

    # ------------------------------------------------------------------
    # Scheme transitions
    # ------------------------------------------------------------------
    def transition_to(
        self,
        scheme: Union[str, RedundancyScheme],
        doc_guard: Optional[Callable[[str], ContextManager[object]]] = None,
    ) -> Optional[TransitionReport]:
        """Migrate this live service to another redundancy scheme.

        Runs a :class:`~repro.system.transitions.TransitionEngine` to
        completion: an AE alpha raise recomputes only the new strand-class
        parities (zero data blocks rewritten), a puncturing change
        regenerates-then-deletes parities, and any cross-family pair
        streams documents through a re-encode with new blocks committed
        before old blocks are deleted.  Reads stay byte-exact throughout --
        documents not yet migrated are served by the retained source
        scheme.  On a durable service the plan is persisted as
        ``transition.json``; a crash at any point resumes automatically on
        the next :meth:`open`.  Returns ``None`` when already on the target.

        ``doc_guard`` (used by the concurrent front-end) yields a context
        manager excluding readers of one document for the instant of its
        copy-commit-delete window.  The bare service assumes the
        single-mutator discipline documented for :meth:`put`.
        """
        self._ensure_open()
        if self._transition is not None:
            raise InvalidParametersError(
                f"a {self._transition.kind} transition to "
                f"{self._transition.target!r} is already in flight; it must "
                "finish (or be resumed via open()) first"
            )
        target = (
            scheme
            if isinstance(scheme, RedundancyScheme)
            else schemes.get(str(scheme), block_size=self.block_size)
        )
        engine = TransitionEngine(self, target, doc_guard=doc_guard)
        return engine.run()

    def _begin_transition(
        self, plan: TransitionPlan, target: RedundancyScheme
    ) -> None:
        """Flip to the target scheme, retaining the source as the fallback
        read path (call with the state lock held)."""
        self._fallback = self._scheme
        self._scheme = target
        self._transition = plan
        params = getattr(target, "params", None)
        if isinstance(params, AEParameters):
            # A cross-family move *into* AE starts a fresh lattice, and with
            # it a fresh epoch ledger.
            self._epochs = EpochHistory.starting_with(params)
        else:
            self._epochs = None

    def _save_transition_plan(self) -> None:
        if self._data_dir is not None and self._transition is not None:
            self._transition.save(self._data_dir, fsync=self._fsync)

    def _record_epoch(self, params: AEParameters) -> None:
        """Append a parameter epoch at the current lattice head (call with
        the state lock held)."""
        if self._epochs is None:
            self._epochs = EpochHistory.starting_with(params)
            return
        position = self._scheme.entangler.blocks_encoded + 1  # type: ignore[attr-defined]
        epochs = self._epochs.epochs
        if epochs and epochs[-1].first_index >= position:
            # The previous setting never encoded a block at this position;
            # the new parameters simply take over its slot.
            epochs[-1] = ParameterEpoch(epochs[-1].first_index, params)
        else:
            self._epochs.change(position, params)

    def _migrate_document(self, name: str) -> Optional[Tuple[int, int, int]]:
        """Re-encode one pending document under the target scheme.

        The core of the reencode transition: read the bytes through the
        source (fallback) scheme, encode them under the target, commit the
        re-pointed catalogue entry to the WAL (a ``transition_doc``
        record), and only then delete the source blocks.  A crash before
        the commit leaves the document pending and source-served; after
        it, migrated and target-served -- either way byte-exact.  Returns
        ``(blocks_written, blocks_deleted, data_blocks_rewritten)``, or
        ``None`` if the document no longer needs migrating.
        """
        with self._state_lock:
            plan = self._transition
            if plan is None or name not in plan.pending:
                return None
            document = self._documents.get(name)
            if document is None:
                plan.pending.discard(name)
                return None
            source = self._fallback if self._fallback is not None else self._scheme
            payloads = self._read_payloads(document.data_ids, scheme=source)
            data = join_blocks(payloads, document.length)
            part = self._scheme.encode(data)
            self._cluster.put_many(part.blocks)
            migrated = StoredDocument(
                name=name, data_ids=part.data_ids, length=document.length
            )
            self._documents[name] = migrated
            plan.pending.discard(name)
            seq = self._next_mutation()
            ops: List[Dict[str, object]] = [
                {
                    "op": "transition_doc",
                    "name": name,
                    "data_ids": _encode_id_runs(part.data_ids),
                    "length": migrated.length,
                    "state": self._scheme.state(),
                    "seq": seq,
                }
            ]
        # Commit outside the lock (group-commit discipline), and only then
        # reclaim: the new version must be durable before the old blocks go.
        self._commit_meta(ops)
        deleted = 0
        if source.capabilities().erasable:
            with self._state_lock:
                deleted = self._cluster.delete_blocks(
                    source.document_blocks(document.data_ids)
                )
        data_blocks = sum(
            1 for block_id, _ in part.blocks if self._scheme.is_data_block(block_id)
        )
        return (len(part.blocks), deleted, data_blocks)

    def _finish_transition(self) -> None:
        """Settle the completed transition and drop the durable plan."""
        with self._state_lock:
            plan = self._transition
            if plan is None:
                return
            # Persist the settled plan (empty pending) first: if the crash
            # hits before the file is removed, the resume sees nothing left
            # to migrate instead of a stale pending list.
            self._save_transition_plan()
            self._transition = None
            self._fallback = None
        self._checkpoint()
        if self._data_dir is not None:
            TransitionPlan.remove(self._data_dir)

    def _resume_transition(self) -> Optional[TransitionReport]:
        """Finish a crash-interrupted transition during :meth:`open`."""
        plan = self._transition
        if plan is None:
            return None
        target = schemes.get(plan.target, block_size=self.block_size)
        if self._scheme.scheme_id == plan.source:
            # The crash hit before the start checkpoint landed: nothing
            # moved yet, so simply restart the transition from scratch.
            self._transition = None
            self._fallback = None
        elif plan.kind == "reencode" and plan.pending:
            # Mid-migration: rebuild the source scheme from its frozen
            # state so pending documents keep their fallback read path.
            fallback = schemes.get(plan.source, block_size=self.block_size)
            fallback.restore_state(
                dict(plan.source_state), self._cluster.try_get_block
            )
            self._fallback = fallback
        engine = TransitionEngine(self, target)
        return engine.run()

    # ------------------------------------------------------------------
    # Failures and repair
    # ------------------------------------------------------------------
    def fail_locations(self, location_ids: Iterable[int]) -> None:
        self._cluster.fail_locations(location_ids)

    def restore_locations(self, location_ids: Optional[Iterable[int]] = None) -> None:
        self._cluster.restore_locations(location_ids)

    def repair(self) -> ServiceRepairReport:
        """Rebuild every unreachable block through the scheme's repair path.

        Recovered payloads are written back to healthy locations (the
        placement index is updated), so a subsequent location restore cannot
        resurrect stale replicas as the only copy.
        """
        self._ensure_open()
        with self._state_lock:
            missing = self._cluster.unavailable_blocks()
            outcome = self._scheme.repair(missing, self._cluster.block_source())
            avoid = tuple(self._cluster.unavailable_locations())
            self._cluster.relocate_many(outcome.recovered.items(), avoid=avoid)
        if outcome.recovered:
            # An informational WAL record: repair moved blocks, giving the
            # log a durability point (the directory itself is rebuilt from
            # backend scans on reopen, so replay ignores the content).
            self._commit_meta(
                [{"op": "placement", "relocated": len(outcome.recovered)}]
            )
        return ServiceRepairReport(
            scheme=self._scheme.scheme_id,
            repaired=sorted(
                outcome.recovered, key=lambda b: (getattr(b, "index", 0), repr(b))
            ),
            unrecovered=list(outcome.unrecovered),
            blocks_read=outcome.blocks_read,
            rounds=outcome.rounds,
            data_loss=sum(
                1
                for block_id in outcome.unrecovered
                if self._scheme.is_data_block(block_id)
            ),
        )
