"""The scheme-agnostic storage front-end.

:class:`StorageService` is the public face of the repository: one
put/get/delete/fail/repair API over a :class:`~repro.storage.cluster.StorageCluster`
and *any* redundancy scheme implementing the
:class:`~repro.schemes.base.RedundancyScheme` protocol -- alpha entanglement
or any of the paper's stripe-code baselines.  Services are opened from a
:class:`StorageConfig`::

    from repro import StorageConfig, StorageService

    service = StorageService.open(StorageConfig(scheme="rs-10-4"))
    service.put("report", payload)
    service.fail_locations(range(3))
    report = service.repair()
    assert service.get("report") == payload

The legacy :class:`~repro.system.entangled_store.EntangledStorageSystem` is a
thin AE-specific shim over this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Union

import repro.schemes as schemes
from repro.core.blocks import join_blocks
from repro.core.encoder import DEFAULT_BLOCK_SIZE
from repro.core.xor import Payload, payload_to_bytes
from repro.exceptions import UnknownBlockError
from repro.schemes.base import RedundancyScheme, SchemeCapabilities
from repro.storage.cluster import StorageCluster
from repro.storage.placement import PlacementPolicy

#: Number of blocks encoded per batch by :meth:`StorageService.put_stream`.
DEFAULT_BATCH_BLOCKS = 256


@dataclass
class StoredDocument:
    """Metadata of one document stored in the system."""

    name: str
    data_ids: List[object]
    length: int

    @property
    def block_count(self) -> int:
        return len(self.data_ids)


@dataclass(frozen=True)
class StorageConfig:
    """Configuration of a :class:`StorageService`.

    ``scheme`` is either a registry identifier (``"ae-3-2-5"``, ``"rs-10-4"``,
    ``"lrc-azure"``, ...) or an already-built scheme instance.
    """

    scheme: Union[str, RedundancyScheme] = schemes.DEFAULT_SCHEME
    location_count: int = 100
    block_size: int = DEFAULT_BLOCK_SIZE
    placement: Optional[PlacementPolicy] = None
    cluster: Optional[StorageCluster] = None
    seed: int = 0
    batch_blocks: int = DEFAULT_BATCH_BLOCKS

    def resolve_scheme(self) -> RedundancyScheme:
        if isinstance(self.scheme, RedundancyScheme):
            return self.scheme
        return schemes.get(self.scheme, block_size=self.block_size)


@dataclass
class ServiceStatus:
    """Snapshot of the health of a storage service."""

    scheme: str
    blocks: int
    unavailable_blocks: int
    unavailable_data_blocks: int
    locations: int
    unavailable_locations: int
    documents: int
    bytes_stored: int

    def summary(self) -> str:
        return (
            f"[{self.scheme}] {self.blocks} blocks on {self.locations} locations "
            f"({self.unavailable_locations} down); {self.unavailable_blocks} blocks "
            f"unreachable ({self.unavailable_data_blocks} data); "
            f"{self.documents} documents, {self.bytes_stored} bytes"
        )


@dataclass
class ServiceRepairReport:
    """Outcome of a scheme-agnostic repair run."""

    scheme: str
    repaired: List[object] = field(default_factory=list)
    unrecovered: List[object] = field(default_factory=list)
    blocks_read: int = 0
    rounds: int = 0
    data_loss: int = 0

    @property
    def repaired_count(self) -> int:
        return len(self.repaired)

    def summary(self) -> str:
        return (
            f"[{self.scheme}] repaired {self.repaired_count} blocks in "
            f"{self.rounds} rounds ({self.blocks_read} reads); "
            f"data loss {self.data_loss}, {len(self.unrecovered)} blocks unrecovered"
        )


class StorageService:
    """High-level put/get/delete/repair interface over any redundancy scheme."""

    def __init__(
        self,
        scheme: RedundancyScheme,
        cluster: StorageCluster,
        batch_blocks: int = DEFAULT_BATCH_BLOCKS,
    ) -> None:
        if batch_blocks < 1:
            raise ValueError("batch_blocks must be at least 1")
        self._scheme = scheme
        self._cluster = cluster
        self._batch_blocks = batch_blocks
        self._documents: Dict[str, StoredDocument] = {}

    @classmethod
    def open(cls, config: Optional[StorageConfig] = None, **overrides) -> "StorageService":
        """Open a service from a config (plus keyword overrides)."""
        config = replace(config or StorageConfig(), **overrides)
        scheme = config.resolve_scheme()
        cluster = config.cluster
        if cluster is None:
            placement = config.placement or scheme.default_placement(
                config.location_count, seed=config.seed
            )
            cluster = StorageCluster(config.location_count, placement)
        return cls(scheme, cluster, batch_blocks=config.batch_blocks)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def scheme(self) -> RedundancyScheme:
        return self._scheme

    @property
    def capabilities(self) -> SchemeCapabilities:
        return self._scheme.capabilities()

    @property
    def cluster(self) -> StorageCluster:
        return self._cluster

    @property
    def block_size(self) -> int:
        return self._scheme.block_size

    @property
    def batch_blocks(self) -> int:
        return self._batch_blocks

    @property
    def documents(self) -> Dict[str, StoredDocument]:
        return dict(self._documents)

    def status(self) -> ServiceStatus:
        stats = self._cluster.stats()
        unavailable = self._cluster.unavailable_blocks()
        return ServiceStatus(
            scheme=self._scheme.scheme_id,
            blocks=stats.blocks,
            unavailable_blocks=len(unavailable),
            unavailable_data_blocks=sum(
                1 for block_id in unavailable if self._scheme.is_data_block(block_id)
            ),
            locations=stats.locations,
            unavailable_locations=stats.locations - stats.available_locations,
            documents=len(self._documents),
            bytes_stored=stats.bytes_stored,
        )

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, name: str, data: bytes) -> StoredDocument:
        """Encode and store a document, returning its handle.

        Re-using a name replaces the document: for erasable schemes the
        blocks of the previous version are deleted once the new version is
        fully stored.
        """
        part = self._scheme.encode(data)
        self._cluster.put_many(part.blocks)
        document = StoredDocument(name=name, data_ids=part.data_ids, length=len(data))
        self._reclaim(name)
        self._documents[name] = document
        return document

    def _reclaim(self, name: str) -> None:
        """Delete the blocks of a document about to be replaced."""
        previous = self._documents.get(name)
        if previous is None or not self._scheme.capabilities().erasable:
            return
        self._cluster.delete_blocks(self._scheme.document_blocks(previous.data_ids))

    def put_stream(self, name: str, chunks: Iterable[bytes]) -> StoredDocument:
        """Encode and store a document from an iterable of byte chunks.

        Chunks of arbitrary sizes are re-blocked into batches of up to
        ``batch_blocks`` blocks; each batch is encoded in one scheme pass and
        persisted through the cluster's bulk write path, so at most one batch
        is buffered in memory.  Empty documents and payloads that are not a
        multiple of the block size round-trip byte-exact (the final block is
        zero-padded for encoding; padding is stripped on read).

        If ``chunks`` raises mid-stream the exception propagates and no
        document is recorded, but batches already encoded stay in the scheme
        state (for entanglement the lattice is append-only by design).
        """
        buffer = bytearray()
        batch_bytes = self._batch_blocks * self.block_size
        data_ids: List[object] = []
        length = 0
        for chunk in chunks:
            buffer += chunk
            length += len(chunk)
            while len(buffer) >= batch_bytes:
                self._ingest_batch(buffer[:batch_bytes], data_ids)
                del buffer[:batch_bytes]
        if buffer:
            self._ingest_batch(buffer, data_ids)
        document = StoredDocument(name=name, data_ids=data_ids, length=length)
        self._reclaim(name)
        self._documents[name] = document
        return document

    def _ingest_batch(self, payload: bytearray, data_ids: List[object]) -> None:
        part = self._scheme.encode(payload)
        self._cluster.put_many(part.blocks)
        data_ids.extend(part.data_ids)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get_block(self, block_id) -> Payload:
        """Read one block, repairing it through the scheme when unreachable."""
        return self._scheme.read_block(block_id, self._cluster.try_get_block)

    def get(self, name: str) -> bytes:
        """Read a full document back, repairing blocks as needed."""
        document = self._document(name)
        payloads = [self.get_block(data_id) for data_id in document.data_ids]
        return join_blocks(payloads, document.length)

    #: Back-compat alias of :meth:`get`.
    read = get

    def read_block_bytes(self, data_id, length: Optional[int] = None) -> bytes:
        return payload_to_bytes(self.get_block(data_id), length)

    def get_stream(self, name: str) -> Iterator[bytes]:
        """Stream a document back one block at a time, repairing as needed."""
        document = self._document(name)

        def blocks() -> Iterator[bytes]:
            remaining = document.length
            for data_id in document.data_ids:
                take = min(remaining, self.block_size)
                yield payload_to_bytes(self.get_block(data_id), take)
                remaining -= take

        return blocks()

    def verify_document(self, name: str, expected: bytes) -> bool:
        """Convenience used by examples/tests: read back and compare."""
        return self.get(name) == expected

    def _document(self, name: str) -> StoredDocument:
        if name not in self._documents:
            raise UnknownBlockError(f"unknown document {name!r}")
        return self._documents[name]

    # ------------------------------------------------------------------
    # Deletes
    # ------------------------------------------------------------------
    def delete(self, name: str) -> List[object]:
        """Delete a document, returning the block ids physically removed.

        For erasable schemes (all stripe codes) every block backing the
        document -- data, redundancy and stripe padding -- is removed from
        its location and from the cluster's placement index.  For
        entanglement the lattice is append-only, so only the document
        metadata is dropped and the returned list is empty; the blocks keep
        protecting their lattice neighbourhood.
        """
        document = self._document(name)
        del self._documents[name]
        if not self._scheme.capabilities().erasable:
            return []
        removed: List[object] = []
        for block_id in self._scheme.document_blocks(document.data_ids):
            if self._cluster.knows(block_id):
                self._cluster.delete_block(block_id)
                removed.append(block_id)
        return removed

    # ------------------------------------------------------------------
    # Failures and repair
    # ------------------------------------------------------------------
    def fail_locations(self, location_ids) -> None:
        self._cluster.fail_locations(location_ids)

    def restore_locations(self, location_ids=None) -> None:
        self._cluster.restore_locations(location_ids)

    def repair(self) -> ServiceRepairReport:
        """Rebuild every unreachable block through the scheme's repair path.

        Recovered payloads are written back to healthy locations (the
        placement index is updated), so a subsequent location restore cannot
        resurrect stale replicas as the only copy.
        """
        missing = self._cluster.unavailable_blocks()
        outcome = self._scheme.repair(missing, self._cluster.try_get_block)
        avoid = tuple(self._cluster.unavailable_locations())
        for block_id, payload in outcome.recovered.items():
            self._cluster.relocate(block_id, payload, avoid=avoid)
        return ServiceRepairReport(
            scheme=self._scheme.scheme_id,
            repaired=sorted(
                outcome.recovered, key=lambda b: (getattr(b, "index", 0), repr(b))
            ),
            unrecovered=list(outcome.unrecovered),
            blocks_read=outcome.blocks_read,
            rounds=outcome.rounds,
            data_loss=sum(
                1
                for block_id in outcome.unrecovered
                if self._scheme.is_data_block(block_id)
            ),
        )
