"""Block keys and location mapping for decentralised deployments.

In the geo-replicated backup use case (paper, Sec. IV-A) blocks are located by
a key "derived from the node id and the block position in the lattice (such
as a hash of both values)", and parities are mapped to storage nodes with a
deterministic or random placement algorithm.  This module implements that key
scheme: stable, content-independent keys that every participant can recompute
without coordination.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.core.blocks import BlockId, is_data


@dataclass(frozen=True)
class BlockKey:
    """A stable key identifying one block of one user's lattice."""

    owner: str
    block_label: str
    digest: str

    def short(self) -> str:
        return self.digest[:16]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"key({self.owner}:{self.block_label}:{self.short()})"


def derive_key(owner: str, block_id: BlockId) -> BlockKey:
    """Derive the key of ``block_id`` within ``owner``'s lattice.

    The key is a SHA-256 digest of the owner identity and the block label
    (``d26`` or ``p[26,rh]``); it does not depend on the payload, so it can be
    computed before the block exists and survives repairs.
    """
    label = block_id.label()
    digest = hashlib.sha256(f"{owner}|{label}".encode("utf-8")).hexdigest()
    return BlockKey(owner=owner, block_label=label, digest=digest)


def location_for_key(key: BlockKey, location_count: int) -> int:
    """Deterministic key -> storage-node mapping (consistent-hash style).

    A thin shim over :meth:`repro.system.sharding.ShardRing.digest_index`,
    so block keys and the sharded document namespace share one hashing
    convention.
    """
    from repro.system.sharding import ShardRing

    return ShardRing.digest_index(key.digest, location_count)


def location_for_block(
    owner: str, block_id: BlockId, location_count: int, exclude: int | None = None
) -> int:
    """Map a block to a storage node, optionally avoiding the owner's own node.

    Data blocks stay on the owner's computer in the cooperative backup design;
    parities are uploaded to remote nodes.  ``exclude`` lets the caller skip
    the owner's node for parity placement.
    """
    if is_data(block_id):
        # The caller normally keeps data local; still provide a stable mapping.
        target = location_for_key(derive_key(owner, block_id), location_count)
    else:
        target = location_for_key(derive_key(owner, block_id), location_count)
    if exclude is not None and location_count > 1 and target == exclude:
        target = (target + 1) % location_count
    return target
