"""Entangled storage system use cases (paper, Section IV).

* :mod:`repro.system.entangled_store` -- a generic put/get/repair system over
  a cluster of storage locations;
* :mod:`repro.system.backup` -- the geo-replicated cooperative backup network;
* :mod:`repro.system.raid` -- entangled mirror arrays and RAID-AE;
* :mod:`repro.system.keys` -- deterministic block keys and location mapping.
"""

from repro.system.archive import ArchiveEntry, ArchiveStore
from repro.system.backup import (
    BackupDocument,
    BackupNode,
    CooperativeBackupNetwork,
    ParityRepairTrace,
    RedundancyDegradation,
    RepairStep,
)
from repro.system.entangled_store import (
    EntangledStorageSystem,
    StoredDocument,
    SystemStatus,
)
from repro.system.keys import BlockKey, derive_key, location_for_block, location_for_key
from repro.system.raid import (
    EntangledMirrorArray,
    MirrorDrive,
    RAIDAEArray,
    SimpleEntanglementChain,
)

__all__ = [
    "ArchiveEntry",
    "ArchiveStore",
    "BackupDocument",
    "BackupNode",
    "BlockKey",
    "CooperativeBackupNetwork",
    "EntangledMirrorArray",
    "EntangledStorageSystem",
    "MirrorDrive",
    "ParityRepairTrace",
    "RAIDAEArray",
    "RedundancyDegradation",
    "RepairStep",
    "SimpleEntanglementChain",
    "StoredDocument",
    "SystemStatus",
    "derive_key",
    "location_for_block",
    "location_for_key",
]
