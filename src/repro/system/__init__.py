"""Storage system layer: the scheme-agnostic service and its use cases.

* :mod:`repro.system.service` -- :class:`StorageService`, the
  put/get/delete/repair front-end over any redundancy scheme;
* :mod:`repro.system.frontend` -- :class:`ConcurrentStorageService`, the
  thread-pool multi-client request path with striped locks and backpressure;
* :mod:`repro.system.loadgen` -- the closed-loop multi-client load generator
  behind ``repro-experiments load`` and the service benchmark;
* :mod:`repro.system.compare` -- the same workload and failure trace run
  across schemes, measured next to the analytic Table IV costs;
* :mod:`repro.system.entangled_store` -- the AE-specific legacy shim;
* :mod:`repro.system.backup` -- the geo-replicated cooperative backup network;
* :mod:`repro.system.raid` -- entangled mirror arrays and RAID-AE;
* :mod:`repro.system.keys` -- deterministic block keys and location mapping;
* :mod:`repro.system.sharding` -- :class:`ShardedStorageService`, the
  consistent-hash federation of many services with scatter-gather reads and
  cross-shard rebalancing;
* :mod:`repro.system.transitions` -- :class:`TransitionEngine` and the
  durable :class:`TransitionPlan`: live, crash-resumable migrations between
  redundancy schemes (alpha raises, puncturing changes, cross-family
  re-encodes).
"""

from repro.system.archive import ArchiveEntry, ArchiveStore
from repro.system.compare import (
    DEFAULT_COMPARE_SCHEMES,
    SchemeComparison,
    compare_schemes,
    single_failure_reads_measured,
)
from repro.system.frontend import (
    ConcurrentStorageService,
    ReadWriteLock,
    derive_stripe_count,
)
from repro.system.loadgen import LoadReport, run_load
from repro.system.service import (
    DEFAULT_BATCH_BLOCKS,
    ServiceRepairReport,
    ServiceStatus,
    StorageConfig,
    StorageService,
)
from repro.system.sharding import (
    FederationRepairReport,
    FederationStatus,
    RebalanceReport,
    ShardRing,
    ShardedStorageService,
)
from repro.system.transitions import (
    TransitionEngine,
    TransitionPlan,
    TransitionReport,
    classify,
)
from repro.system.backup import (
    BackupDocument,
    BackupNode,
    CooperativeBackupNetwork,
    ParityRepairTrace,
    RedundancyDegradation,
    RepairStep,
)
from repro.system.entangled_store import (
    EntangledStorageSystem,
    StoredDocument,
    SystemStatus,
)
from repro.system.keys import BlockKey, derive_key, location_for_block, location_for_key
from repro.system.raid import (
    EntangledMirrorArray,
    MirrorDrive,
    RAIDAEArray,
    SimpleEntanglementChain,
)

__all__ = [
    "ArchiveEntry",
    "ArchiveStore",
    "BackupDocument",
    "ConcurrentStorageService",
    "DEFAULT_BATCH_BLOCKS",
    "DEFAULT_COMPARE_SCHEMES",
    "FederationRepairReport",
    "FederationStatus",
    "LoadReport",
    "ReadWriteLock",
    "RebalanceReport",
    "SchemeComparison",
    "ServiceRepairReport",
    "ServiceStatus",
    "ShardRing",
    "ShardedStorageService",
    "StorageConfig",
    "StorageService",
    "TransitionEngine",
    "TransitionPlan",
    "TransitionReport",
    "classify",
    "compare_schemes",
    "derive_stripe_count",
    "run_load",
    "single_failure_reads_measured",
    "BackupNode",
    "BlockKey",
    "CooperativeBackupNetwork",
    "EntangledMirrorArray",
    "EntangledStorageSystem",
    "MirrorDrive",
    "ParityRepairTrace",
    "RAIDAEArray",
    "RedundancyDegradation",
    "RepairStep",
    "SimpleEntanglementChain",
    "StoredDocument",
    "SystemStatus",
    "derive_key",
    "location_for_block",
    "location_for_key",
]
