"""Run the same workload and failure trace across redundancy schemes.

This is the measured counterpart of the paper's analytic Table IV: the same
document is written through every scheme's :class:`StorageService`, a single
block failure is injected and repaired through the live decode path (the
measured repair reads are printed next to the closed-form ``CodeCosts``
numbers), and a location-failure trace is replayed to report repair traffic,
data loss and end-to-end round-trip integrity per scheme.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.codes.base import CodeCosts
from repro.core.xor import Payload, payloads_equal
from repro.exceptions import ReproError
from repro.storage.topology import Topology
from repro.system.service import StorageConfig, StorageService

__all__ = [
    "DEFAULT_COMPARE_SCHEMES",
    "SchemeComparison",
    "compare_schemes",
    "single_failure_reads_measured",
]

#: Schemes compared by default: the paper's flagship AE setting against one
#: representative of every baseline family.
DEFAULT_COMPARE_SCHEMES = (
    "ae-3-2-5",
    "rs-10-4",
    "lrc-azure",
    "lrc-xorbas",
    "rep-3",
    "xor-geo",
)


@dataclass
class SchemeComparison:
    """Measured and analytic behaviour of one scheme under one workload."""

    scheme_id: str
    name: str
    analytic: CodeCosts
    measured_storage_percent: float
    measured_single_failure_reads: int
    failed_locations: int
    repaired_blocks: int
    repair_reads: int
    repair_rounds: int
    data_loss: int
    round_trip_ok: bool

    @property
    def reads_match_analytic(self) -> bool:
        """Measured single-failure reads equal the Table IV prediction."""
        return self.measured_single_failure_reads == self.analytic.single_failure_cost

    def as_row(self) -> Dict[str, object]:
        return {
            "scheme": self.scheme_id,
            "code": self.name,
            "storage % (analytic)": round(self.analytic.additional_storage_percent, 1),
            "storage % (measured)": round(self.measured_storage_percent, 1),
            "1-failure reads (analytic)": self.analytic.single_failure_cost,
            "1-failure reads (measured)": self.measured_single_failure_reads,
            "disaster: failed locations": self.failed_locations,
            "disaster: repaired": self.repaired_blocks,
            "disaster: reads": self.repair_reads,
            "disaster: rounds": self.repair_rounds,
            "disaster: data loss": self.data_loss,
            "round trip": "ok" if self.round_trip_ok else "LOSS",
        }


def single_failure_reads_measured(
    service: StorageService, data_ids: Sequence[object], victims: int = 3
) -> List[int]:
    """Blocks read to repair one missing data block, measured per victim.

    Victims are taken from the middle of ``data_ids`` (away from strand
    starts, where AE repairs degenerate to one read).  Each probe masks the
    victim from the scheme's block source, runs the live repair path, checks
    the recovered payload byte-exact against the stored block and returns the
    read count.
    """
    if not data_ids:
        raise ReproError("cannot probe an empty document")
    count = min(victims, len(data_ids))
    stride = max(len(data_ids) // (count + 1), 1)
    chosen = [data_ids[min((i + 1) * stride, len(data_ids) - 1)] for i in range(count)]
    reads: List[int] = []
    cluster = service.cluster
    for victim in dict.fromkeys(chosen):
        expected = cluster.get_block(victim)

        def fetch(block_id: object, _victim: object = victim) -> Optional[Payload]:
            if block_id == _victim:
                return None
            return cluster.try_get_block(block_id)

        outcome = service.scheme.repair({victim}, fetch)
        if victim not in outcome.recovered:
            raise ReproError(
                f"{service.scheme.scheme_id}: live repair failed for {victim!r}"
            )
        if not payloads_equal(outcome.recovered[victim], expected):
            raise ReproError(
                f"{service.scheme.scheme_id}: repair of {victim!r} returned wrong bytes"
            )
        reads.append(outcome.blocks_read)
    return reads


def _compare_sharded(
    config: StorageConfig,
    scheme_id: str,
    payload: bytes,
    failed: Sequence[int],
    victims: int,
    data_dir: Optional[str],
) -> SchemeComparison:
    """One scheme's comparison run through a sharded federation.

    The workload document lands on its ring owner, whose shard is configured
    identically to the unsharded service (same scheme, seed and location
    count), so the measured storage overhead and single-failure reads are
    directly comparable to the single-service run.  The disaster then fails
    the same location ids on *every* shard and repairs federation-wide.
    """
    from repro.system.sharding import ShardedStorageService

    federation = ShardedStorageService.open(config)
    try:
        document = federation.put("workload", payload)
        owner = federation.shard(federation.shard_for("workload")).service
        stored = owner.cluster.stats().bytes_stored
        measured_overhead = (
            (stored - len(payload)) / len(payload) * 100.0 if payload else 0.0
        )
        probe_reads = single_failure_reads_measured(
            owner, document.data_ids, victims=victims
        )
        for shard_id in federation.shard_ids:
            federation.fail_locations(failed, shard_id)
        report = federation.repair()
        try:
            round_trip = federation.get("workload") == payload
        except ReproError:
            round_trip = False
        federation.restore_locations(failed)
        capabilities = federation.capabilities
        return SchemeComparison(
            scheme_id=scheme_id,
            name=capabilities.name,
            analytic=capabilities.costs(),
            measured_storage_percent=measured_overhead,
            measured_single_failure_reads=max(probe_reads),
            failed_locations=len(failed) * federation.shard_count,
            repaired_blocks=report.repaired_count,
            repair_reads=report.blocks_read,
            repair_rounds=report.rounds,
            data_loss=report.data_loss,
            round_trip_ok=round_trip,
        )
    finally:
        if data_dir is not None:
            federation.close()


def compare_schemes(
    scheme_ids: Sequence[str] = DEFAULT_COMPARE_SCHEMES,
    data_blocks: int = 240,
    block_size: int = 1024,
    location_count: int = 60,
    fail_locations: int = 3,
    seed: int = 7,
    victims: int = 3,
    backend: str = "memory",
    data_dir: Optional[str] = None,
    fsync: bool = False,
    topology: Optional[Union[Topology, int, str]] = None,
    placement: Optional[str] = None,
    fail_target: Optional[str] = None,
    shards: int = 1,
) -> List[SchemeComparison]:
    """Write, fail and repair the same workload under every scheme.

    ``data_blocks`` defaults to a multiple of every default scheme's stripe
    width so the measured storage overhead is exact.  The disaster trace
    fails ``fail_locations`` randomly chosen locations (same choice for every
    scheme), repairs, and verifies the document byte-exact with the failed
    locations still down -- degraded reads must cover whatever repair could
    not.

    ``topology`` (a :class:`~repro.storage.topology.Topology`, spec string or
    JSON path) replaces ``location_count`` with an explicit site/rack/node
    layout; ``placement`` names a policy from the
    :mod:`repro.storage.placement` registry used for every scheme, and
    ``fail_target`` turns the disaster into a deterministic whole-domain
    outage (``"site:0"``, ``"rack:eu/1"``) resolved against the topology.

    With a persistent ``backend`` each scheme gets its own sub-root
    ``<data_dir>/<scheme_id>`` and its service is closed at the end of the
    run, so the written workloads can be reopened and inspected afterwards.

    ``shards > 1`` runs every scheme through a
    :class:`~repro.system.sharding.ShardedStorageService` federation instead
    of a single service: the workload routes to its ring owner (whose shard
    is configured identically to the unsharded service, so the measured
    storage overhead and single-failure reads stay comparable), the disaster
    fails the same location ids *on every shard*, and the repair runs
    federation-wide -- the round trip then exercises the per-shard failure
    independence end to end.
    """
    rng = random.Random(seed)
    payload = rng.randbytes(data_blocks * block_size)
    resolved_topology = Topology.resolve(topology)
    if resolved_topology is not None:
        location_count = resolved_topology.node_count
    if fail_target is not None:
        if resolved_topology is None:
            raise ReproError(
                f"fail target {fail_target!r} needs a topology (sites/racks)"
            )
        failed = sorted(resolved_topology.locations_for_target(fail_target))
    else:
        failed = rng.sample(range(location_count), min(fail_locations, location_count))
    if shards < 1:
        raise ReproError("shards must be at least 1")
    results: List[SchemeComparison] = []
    for scheme_id in scheme_ids:
        config = StorageConfig(
            scheme=scheme_id,
            location_count=None if resolved_topology is not None else location_count,
            block_size=block_size,
            seed=seed,
            backend=backend,
            data_dir=(
                os.path.join(data_dir, scheme_id) if data_dir is not None else None
            ),
            fsync=fsync,
            topology=resolved_topology,
            placement=placement,
            shards=shards if shards > 1 else None,
        )
        if shards > 1:
            results.append(
                _compare_sharded(config, scheme_id, payload, failed, victims, data_dir)
            )
            continue
        service = StorageService.open(config)
        document = service.put("workload", payload)
        stored = service.cluster.stats().bytes_stored
        measured_overhead = (
            (stored - len(payload)) / len(payload) * 100.0 if payload else 0.0
        )
        probe_reads = single_failure_reads_measured(
            service, document.data_ids, victims=victims
        )
        service.fail_locations(failed)
        report = service.repair()
        round_trip = False
        try:
            round_trip = service.get("workload") == payload
        except ReproError:
            round_trip = False
        service.restore_locations(failed)
        capabilities = service.capabilities
        if data_dir is not None:
            service.close()
        results.append(
            SchemeComparison(
                scheme_id=scheme_id,
                name=capabilities.name,
                analytic=capabilities.costs(),
                measured_storage_percent=measured_overhead,
                measured_single_failure_reads=max(probe_reads),
                failed_locations=len(failed),
                repaired_blocks=report.repaired_count,
                repair_reads=report.blocks_read,
                repair_rounds=report.rounds,
                data_loss=report.data_loss,
                round_trip_ok=round_trip,
            )
        )
    return results
