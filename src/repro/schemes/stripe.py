"""Adapter putting every :class:`~repro.codes.base.StripeCode` behind the
scheme-agnostic :class:`~repro.schemes.base.RedundancyScheme` protocol.

Incoming data blocks are packed into stripes of ``k`` blocks (the final
stripe of a batch is completed with stored zero-padding blocks so every
stripe is structurally whole), parities are appended at positions
``k .. n-1`` and every block is addressed by a :class:`StripeBlockId`.
Repair uses the cheapest read set the code advertises through
:meth:`StripeCode.repair_read_positions` -- one block for replication, the
local group for LRC, the smallest parity equation for flat XOR, ``k`` blocks
for Reed-Solomon -- and falls back to a full decode of the surviving stripe
when the cheap plan is unavailable, so the measured read counts line up with
the analytic Table IV costs for single failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.codes.base import StripeCode
from repro.codes.flat_xor import FlatXorCode
from repro.codes.lrc import LocalReconstructionCode
from repro.codes.reed_solomon import ReedSolomonCode
from repro.codes.replication import ReplicationCode
from repro.core.xor import Payload, PayloadBatch, as_payload, as_payload_matrix, zero_payload
from repro.exceptions import DecodingError, RepairFailedError
from repro.schemes.base import (
    BlockFetcher,
    CountingFetcher,
    EncodedPart,
    RedundancyScheme,
    SchemeCapabilities,
    SchemeRepairOutcome,
)

__all__ = ["StripeBlockId", "StripeScheme"]


@dataclass(frozen=True, order=True, slots=True)
class StripeBlockId:
    """Identifier of one block of a striped layout.

    ``stripe`` is the running stripe number of the scheme instance and
    ``position`` the slot within the stripe: ``0 .. k-1`` data,
    ``k .. n-1`` redundancy.
    """

    stripe: int
    position: int

    @property
    def index(self) -> int:
        """A flat integer used by placement spreading (cluster relocate)."""
        return self.stripe * 1024 + self.position

    def label(self) -> str:
        return f"s[{self.stripe},{self.position}]"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.label()


_KINDS = {
    ReedSolomonCode: "rs",
    LocalReconstructionCode: "lrc",
    ReplicationCode: "replication",
    FlatXorCode: "xor",
}


class StripeScheme(RedundancyScheme):
    """Drives a :class:`StripeCode` through the redundancy protocol."""

    def __init__(self, code: StripeCode, scheme_id: str, block_size: int = 4096) -> None:
        super().__init__(scheme_id, block_size)
        self._code = code
        self._next_stripe = 0
        # Real data blocks per stripe (only recorded when < k): positions at
        # or beyond this count are stored zero padding, not document data.
        self._real_count: Dict[int, int] = {}

    @property
    def code(self) -> StripeCode:
        return self._code

    @property
    def stripes_written(self) -> int:
        return self._next_stripe

    def capabilities(self) -> SchemeCapabilities:
        code = self._code
        return SchemeCapabilities(
            scheme_id=self.scheme_id,
            name=code.name,
            kind=_KINDS.get(type(code), "stripe"),
            storage_overhead=code.storage_overhead,
            single_failure_reads=code.single_failure_cost,
            streaming=False,
            erasable=True,
        )

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def encode(self, payloads: PayloadBatch) -> EncodedPart:
        matrix = as_payload_matrix(payloads, self._block_size)
        code = self._code
        part = EncodedPart()
        row_count = matrix.shape[0]
        for start in range(0, row_count, code.k):
            rows: List[Payload] = [
                matrix[row] for row in range(start, min(start + code.k, row_count))
            ]
            real = len(rows)
            while len(rows) < code.k:
                rows.append(zero_payload(self._block_size))
            stripe = self._next_stripe
            self._next_stripe += 1
            if real < code.k:
                self._real_count[stripe] = real
            parities = code.encode(rows)
            for position, payload in enumerate(rows + parities):
                part.blocks.append((StripeBlockId(stripe, position), payload))
            part.data_ids.extend(StripeBlockId(stripe, position) for position in range(real))
        return part

    # ------------------------------------------------------------------
    # Read / repair path
    # ------------------------------------------------------------------
    def read_block(self, block_id: object, fetch: BlockFetcher) -> Payload:
        payload = fetch(block_id)
        if payload is not None:
            return as_payload(payload, self._block_size)
        recovered, unrecovered = self._repair_stripe(
            block_id.stripe, [block_id.position], fetch
        )
        if block_id in recovered:
            return recovered[block_id]
        raise RepairFailedError(block_id, "stripe does not determine the block")

    def repair(self, missing: Set[object], fetch: BlockFetcher) -> SchemeRepairOutcome:
        outcome = SchemeRepairOutcome(rounds=1)
        by_stripe: Dict[int, List[int]] = {}
        for block_id in missing:
            if isinstance(block_id, StripeBlockId) and block_id.stripe < self._next_stripe:
                by_stripe.setdefault(block_id.stripe, []).append(block_id.position)
            else:
                outcome.unrecovered.append(block_id)
        counter = CountingFetcher(fetch)
        for stripe in sorted(by_stripe):
            recovered, unrecovered = self._repair_stripe(
                stripe, by_stripe[stripe], counter
            )
            outcome.recovered.update(recovered)
            outcome.unrecovered.extend(unrecovered)
        outcome.blocks_read = counter.reads
        if not outcome.recovered:
            outcome.rounds = 0
        return outcome

    def _repair_stripe(
        self, stripe: int, missing_positions: Iterable[int], fetch: BlockFetcher
    ) -> Tuple[Dict[StripeBlockId, Payload], List[StripeBlockId]]:
        """Rebuild the missing positions of one stripe, reading as little as
        the code allows."""
        code = self._code
        missing = sorted(set(missing_positions))
        others = [position for position in range(code.n) if position not in missing]
        fetched: Dict[int, Payload] = {}
        bulk = getattr(fetch, "try_get_many", None)

        def grab_many(positions: Sequence[int]) -> None:
            """Fetch the not-yet-cached positions, in one bulk call when the
            fetcher supports it; failed positions stay absent from the cache."""
            wanted = [position for position in positions if position not in fetched]
            if not wanted:
                return
            block_ids = [StripeBlockId(stripe, position) for position in wanted]
            payloads = (
                bulk(block_ids)
                if bulk is not None
                else [fetch(block_id) for block_id in block_ids]
            )
            for position, payload in zip(wanted, payloads):
                if payload is not None:
                    fetched[position] = as_payload(payload, self._block_size)

        def grab(position: int) -> Optional[Payload]:
            grab_many([position])
            return fetched.get(position)

        recovered: Dict[StripeBlockId, Payload] = {}
        if len(missing) == 1:
            position = missing[0]
            plan = code.repair_read_positions(position, others)
            if plan is not None:
                grab_many(plan)
                payloads = {p: fetched.get(p) for p in plan}
                if all(payload is not None for payload in payloads.values()):
                    recovered[StripeBlockId(stripe, position)] = code.repair(
                        position, payloads
                    )
                    return recovered, []
        # General path: decode the stripe from everything still readable.
        # The read set is every surviving position of the stripe -- the same
        # blocks a per-position loop would attempt -- fetched in one batch.
        grab_many(others)
        available = {
            position: payload
            for position in others
            if (payload := grab(position)) is not None
        }
        try:
            if not code.can_decode(sorted(available)):
                raise DecodingError("insufficient surviving blocks")
            data = code.decode(available)
            parities: Optional[List[Payload]] = None
            for position in missing:
                if position < code.k:
                    recovered[StripeBlockId(stripe, position)] = as_payload(
                        data[position], self._block_size
                    )
                else:
                    if parities is None:
                        parities = code.encode(data)
                    recovered[StripeBlockId(stripe, position)] = parities[
                        position - code.k
                    ]
        except DecodingError:
            return recovered, [
                StripeBlockId(stripe, position)
                for position in missing
                if StripeBlockId(stripe, position) not in recovered
            ]
        return recovered, []

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, object]:
        """The stripe write position plus the short-stripe padding map."""
        return {
            "next_stripe": self._next_stripe,
            "real_count": {str(stripe): real for stripe, real in self._real_count.items()},
        }

    def restore_state(self, state: Dict[str, object], fetch: BlockFetcher) -> None:
        """Resume striping where the closed service stopped (no reads needed)."""
        self._next_stripe = int(state.get("next_stripe", 0))
        self._real_count = {
            int(stripe): int(real)
            for stripe, real in dict(state.get("real_count", {})).items()
        }

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    def is_data_block(self, block_id: object) -> bool:
        """True for document data: parity and stored padding positions are not."""
        if not isinstance(block_id, StripeBlockId):
            return False
        real = self._real_count.get(block_id.stripe, self._code.k)
        return block_id.position < real

    def document_blocks(self, data_ids: Sequence[object]) -> List[object]:
        stripes = sorted({block_id.stripe for block_id in data_ids})
        return [
            StripeBlockId(stripe, position)
            for stripe in stripes
            for position in range(self._code.n)
        ]
