"""The scheme-agnostic redundancy protocol.

Every redundancy scheme the paper evaluates -- alpha entanglement codes and
the stripe-code baselines (Reed-Solomon, Azure/Xorbas LRC, flat XOR codes,
replication) -- is driven through one interface: :class:`RedundancyScheme`.
The protocol covers the four verbs a storage front-end needs
(:meth:`~RedundancyScheme.encode`, :meth:`~RedundancyScheme.read_block`,
:meth:`~RedundancyScheme.repair`, :meth:`~RedundancyScheme.document_blocks`)
plus capability metadata (:class:`SchemeCapabilities`) that carries the
analytic Table IV quantities, so measured and closed-form costs can be printed
side by side.

Adapters:

* :class:`repro.codes.entanglement.EntanglementScheme` -- AE(alpha, s, p)
  over the helical lattice (wraps the batched encoder and lattice decoder);
* :class:`repro.schemes.stripe.StripeScheme` -- any
  :class:`repro.codes.base.StripeCode` subclass.

Instances are resolved from string identifiers through the registry in
:mod:`repro.schemes` (``repro.schemes.get("rs-10-4")``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.xor import Payload, PayloadBatch

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.codes.base import CodeCosts
    from repro.storage.placement import PlacementPolicy
    from repro.storage.topology import Topology

#: A block source returns the payload of a block or ``None`` when unavailable.
BlockFetcher = Callable[[object], Optional[Payload]]


@dataclass(frozen=True)
class SchemeCapabilities:
    """Capability metadata of a redundancy scheme.

    ``storage_overhead`` is the additional storage as a fraction of the
    original data and ``single_failure_reads`` the number of surviving blocks
    read to repair one missing block -- together they are the scheme's
    analytic Table IV row (see :meth:`costs`).  ``streaming`` marks append-only
    schemes whose global state grows with every write (the AE lattice);
    ``erasable`` marks schemes whose blocks can be physically deleted without
    invalidating other documents' redundancy (stripe codes: yes, entanglement:
    no, the lattice is append-only).
    """

    scheme_id: str
    name: str
    kind: str
    storage_overhead: float
    single_failure_reads: int
    streaming: bool = False
    erasable: bool = True

    def costs(self) -> "CodeCosts":
        """The scheme's analytic Table IV row."""
        from repro.codes.base import CodeCosts

        return CodeCosts(
            name=self.name,
            additional_storage_percent=self.storage_overhead * 100.0,
            single_failure_cost=self.single_failure_reads,
        )


@dataclass
class EncodedPart:
    """Result of encoding one batch of data blocks.

    ``data_ids`` holds one identifier per input block, in input order -- these
    are the handles a document records.  ``blocks`` holds every block the
    batch produced (data, redundancy and, for stripe codes, zero padding) as
    ``(block_id, payload)`` pairs ready for a bulk cluster write.
    """

    data_ids: List[object] = field(default_factory=list)
    blocks: List[Tuple[object, Payload]] = field(default_factory=list)

    @property
    def block_count(self) -> int:
        return len(self.blocks)


@dataclass
class SchemeRepairOutcome:
    """Result of a scheme-level repair pass.

    ``recovered`` maps repaired block identifiers to their rebuilt payloads
    (the caller decides where to write them); ``blocks_read`` counts every
    payload the repair fetched, the measured counterpart of the analytic
    single-failure cost; ``rounds`` is the number of repair rounds used
    (> 1 only for entanglement after large disasters, Table VI).
    """

    recovered: Dict[object, Payload] = field(default_factory=dict)
    blocks_read: int = 0
    rounds: int = 0
    unrecovered: List[object] = field(default_factory=list)

    @property
    def repaired_count(self) -> int:
        return len(self.recovered)


class RedundancyScheme(ABC):
    """Uniform encode / read / repair interface over one redundancy scheme.

    A scheme instance is bound to a block size and owns whatever per-stream
    state its code family needs (the strand heads of an entanglement encoder,
    the stripe counter of a stripe code).  It never talks to storage directly:
    reads go through a :data:`BlockFetcher` callable supplied by the caller,
    which keeps the scheme reusable against a cluster, a payload dict or a
    network client.
    """

    def __init__(self, scheme_id: str, block_size: int) -> None:
        self._scheme_id = scheme_id
        self._block_size = block_size

    @property
    def scheme_id(self) -> str:
        """The registry identifier of this instance, e.g. ``"rs-10-4"``."""
        return self._scheme_id

    @property
    def block_size(self) -> int:
        return self._block_size

    @abstractmethod
    def capabilities(self) -> SchemeCapabilities:
        """Capability metadata, including the analytic Table IV costs."""

    @abstractmethod
    def encode(self, payloads: PayloadBatch) -> EncodedPart:
        """Encode a batch of data blocks into storable blocks.

        ``payloads`` may be a byte string (split into zero-padded blocks), a
        ``(n, block_size)`` uint8 matrix or a sequence of block payloads --
        the accepted inputs of :func:`repro.core.xor.as_payload_matrix`.
        """

    @abstractmethod
    def read_block(self, block_id: object, fetch: BlockFetcher) -> Payload:
        """Return the payload of one block, repairing through redundancy when
        the direct fetch fails.  Raises
        :class:`repro.exceptions.RepairFailedError` when no recovery path is
        available."""

    @abstractmethod
    def repair(self, missing: Set[object], fetch: BlockFetcher) -> SchemeRepairOutcome:
        """Rebuild as many of ``missing`` blocks as possible from ``fetch``."""

    @abstractmethod
    def is_data_block(self, block_id: object) -> bool:
        """True when ``block_id`` identifies a data (not redundancy) block."""

    @abstractmethod
    def document_blocks(self, data_ids: Sequence[object]) -> List[object]:
        """All block identifiers backing the given data blocks.

        For stripe codes this is every position of every stripe the data ids
        touch (including redundancy and padding) -- the set a delete must
        clean up.  Entanglement returns only the data ids themselves: parities
        are woven into the append-only lattice and must survive deletion.
        """

    def default_placement(self, topology: "Topology | int", seed: int = 0) -> "PlacementPolicy":
        """The placement policy used when the caller does not supply one.

        ``topology`` is a :class:`~repro.storage.topology.Topology` or a bare
        location count (the flat single-site shim).
        """
        from repro.storage.placement import RandomPlacement

        return RandomPlacement(topology, seed=seed)

    # ------------------------------------------------------------------
    # Durability hooks
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, object]:
        """JSON-serialisable per-stream state for a durable close/reopen.

        Schemes whose encoder carries state across writes (the entanglement
        lattice size, a stripe counter) return it here so a
        :class:`~repro.system.service.StorageService` manifest can bring a
        reopened service back to the exact write position.  Stateless schemes
        return an empty dict.
        """
        return {}

    def restore_state(self, state: Dict[str, object], fetch: BlockFetcher) -> None:
        """Rebuild the per-stream state captured by :meth:`state`.

        ``fetch`` reads blocks from the reopened storage (the entanglement
        encoder retrieves its strand-head parities this way, paper Sec. IV-A).
        The default is a no-op for stateless schemes.
        """


class CountingFetcher:
    """Wraps a :data:`BlockFetcher` and counts successful reads."""

    def __init__(self, fetch: BlockFetcher) -> None:
        self._fetch = fetch
        self.reads = 0

    def __call__(self, block_id: object) -> Optional[Payload]:
        payload = self._fetch(block_id)
        if payload is not None:
            self.reads += 1
        return payload

    def try_get_many(self, block_ids: Iterable[object]) -> List[Optional[Payload]]:
        """Bulk fetch, counting successes; batches through to the wrapped
        fetcher's own ``try_get_many`` when it has one (a
        :class:`~repro.storage.cluster.ClusterBlockSource`), falling back to
        one call per block otherwise."""
        wanted = list(block_ids)
        bulk = getattr(self._fetch, "try_get_many", None)
        if bulk is not None:
            payloads = list(bulk(wanted))
        else:
            payloads = [self._fetch(block_id) for block_id in wanted]
        self.reads += sum(1 for payload in payloads if payload is not None)
        return payloads
