"""String-keyed registry of redundancy schemes.

Every scheme the evaluation compares is reachable from one identifier::

    import repro.schemes as schemes

    scheme = schemes.get("ae-3-2-5")      # alpha entanglement AE(3,2,5)
    scheme = schemes.get("rs-10-4")       # Reed-Solomon RS(10,4)
    scheme = schemes.get("lrc-azure")     # Azure LRC(12,2,2)
    scheme = schemes.get("lrc-xorbas")    # HDFS-Xorbas LRC(10,2,4)
    scheme = schemes.get("rep-3")         # 3-way replication
    scheme = schemes.get("xor-geo")       # Facebook warm-BLOB geo XOR
    scheme = schemes.get("xor-raid5-5")   # RAID-5 single parity over 5 blocks

Identifiers are ``family-args`` strings; :func:`available` lists the
families.  New families are added with :func:`register` -- the factory
receives the dash-separated argument list and the block size and returns a
:class:`~repro.schemes.base.RedundancyScheme` instance.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.codes.lrc import LocalReconstructionCode, azure_lrc, xorbas_lrc
from repro.codes.flat_xor import FlatXorCode, geo_xor_code, mirrored_pairs_code, raid5_code
from repro.codes.reed_solomon import ReedSolomonCode
from repro.codes.replication import ReplicationCode
from repro.exceptions import InvalidParametersError
from repro.schemes.base import (
    BlockFetcher,
    CountingFetcher,
    EncodedPart,
    RedundancyScheme,
    SchemeCapabilities,
    SchemeRepairOutcome,
)
from repro.schemes.stripe import StripeBlockId, StripeScheme

__all__ = [
    "BlockFetcher",
    "CountingFetcher",
    "DEFAULT_SCHEME",
    "EncodedPart",
    "RedundancyScheme",
    "SchemeCapabilities",
    "SchemeRepairOutcome",
    "StripeBlockId",
    "StripeScheme",
    "available",
    "get",
    "register",
]

#: The flagship setting of the paper, used wherever a default is needed.
DEFAULT_SCHEME = "ae-3-2-5"

#: A factory builds a scheme from the dash-separated id arguments.
SchemeFactory = Callable[[str, Sequence[str], int], RedundancyScheme]

_FAMILIES: Dict[str, SchemeFactory] = {}
_EXAMPLES: Dict[str, str] = {}


def register(family: str, factory: SchemeFactory, example: str) -> None:
    """Register a scheme family under ``family`` (the id prefix)."""
    _FAMILIES[family.lower()] = factory
    _EXAMPLES[family.lower()] = example


def available() -> Dict[str, str]:
    """Registered families mapped to an example identifier."""
    return dict(_EXAMPLES)


def get(scheme_id: str, block_size: int = 4096) -> RedundancyScheme:
    """Resolve a scheme identifier to a fresh scheme instance."""
    cleaned = scheme_id.strip().lower()
    family, _, rest = cleaned.partition("-")
    if family not in _FAMILIES:
        raise InvalidParametersError(
            f"unknown redundancy scheme {scheme_id!r}; families: "
            + ", ".join(sorted(_FAMILIES))
        )
    args = [part for part in rest.split("-") if part] if rest else []
    try:
        return _FAMILIES[family](cleaned, args, block_size)
    except (ValueError, IndexError) as exc:
        raise InvalidParametersError(
            f"cannot parse scheme id {scheme_id!r} "
            f"(example: {_EXAMPLES[family]!r}): {exc}"
        ) from exc


# ----------------------------------------------------------------------
# Built-in families
# ----------------------------------------------------------------------
def _ae_factory(scheme_id: str, args: Sequence[str], block_size: int) -> RedundancyScheme:
    # Imported lazily: repro.codes.entanglement imports this package.
    from repro.codes.entanglement import EntanglementScheme, PuncturedEntanglementScheme
    from repro.core.parameters import AEParameters

    if len(args) == 1 and args[0] == "1":
        params = AEParameters.single()
    elif len(args) == 4 and args[3].startswith("p"):
        # ae-<alpha>-<s>-<p>-p<keep%>: a rate-punctured variant storing only
        # keep% of the parities (paper Sec. III-B).
        params = AEParameters(int(args[0]), int(args[1]), int(args[2]))
        percent = int(args[3][1:])
        if not 0 < percent <= 100:
            raise ValueError("puncture keep percentage must be in (0, 100]")
        return PuncturedEntanglementScheme(
            params, percent / 100.0, block_size=block_size, scheme_id=scheme_id
        )
    elif len(args) == 3:
        params = AEParameters(int(args[0]), int(args[1]), int(args[2]))
    else:
        raise ValueError("expected ae-1, ae-<alpha>-<s>-<p> or ae-<alpha>-<s>-<p>-p<keep%>")
    return EntanglementScheme(params, block_size=block_size, scheme_id=scheme_id)


def _rs_factory(scheme_id: str, args: Sequence[str], block_size: int) -> RedundancyScheme:
    if len(args) != 2:
        raise ValueError("expected rs-<k>-<m>")
    return StripeScheme(
        ReedSolomonCode(int(args[0]), int(args[1])), scheme_id, block_size
    )


def _lrc_factory(scheme_id: str, args: Sequence[str], block_size: int) -> RedundancyScheme:
    if args == ["azure"]:
        code: LocalReconstructionCode = azure_lrc()
    elif args == ["xorbas"]:
        code = xorbas_lrc()
    elif len(args) == 3:
        code = LocalReconstructionCode(int(args[0]), int(args[1]), int(args[2]))
    else:
        raise ValueError("expected lrc-azure, lrc-xorbas or lrc-<k>-<l>-<r>")
    return StripeScheme(code, scheme_id, block_size)


def _rep_factory(scheme_id: str, args: Sequence[str], block_size: int) -> RedundancyScheme:
    if len(args) != 1:
        raise ValueError("expected rep-<copies>")
    return StripeScheme(ReplicationCode(int(args[0])), scheme_id, block_size)


def _xor_factory(scheme_id: str, args: Sequence[str], block_size: int) -> RedundancyScheme:
    if args == ["geo"]:
        code: FlatXorCode = geo_xor_code()
    elif len(args) == 2 and args[0] == "raid5":
        code = raid5_code(int(args[1]))
    elif len(args) == 2 and args[0] == "mirror":
        code = mirrored_pairs_code(int(args[1]))
    else:
        raise ValueError("expected xor-geo, xor-raid5-<k> or xor-mirror-<k>")
    return StripeScheme(code, scheme_id, block_size)


register("ae", _ae_factory, "ae-3-2-5")
register("rs", _rs_factory, "rs-10-4")
register("lrc", _lrc_factory, "lrc-azure")
register("rep", _rep_factory, "rep-3")
register("xor", _xor_factory, "xor-geo")
