"""Command line entry point: ``repro-experiments``.

Runs the paper's experiments and prints the resulting tables.  Examples::

    repro-experiments --list
    repro-experiments fig11 --blocks 200000
    repro-experiments all --paper-scale
    repro-experiments fig8 --method family
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from repro.analysis.fault_tolerance import complex_form_catalogue, me_curves
from repro.analysis.markov import five_year_loss_table
from repro.analysis.reliability import five_year_comparison
from repro.analysis.repair_cost import single_failure_table
from repro.analysis.write_performance import figure10_comparison
from repro.core.parameters import AEParameters
from repro.simulation.churn import ChurnConfig, compare_schemes_under_churn
from repro.simulation.traces import p2p_session_trace
from repro.simulation.experiments import (
    ExperimentConfig,
    costs_table,
    data_loss_experiment,
    placement_balance_report,
    repair_rounds_experiment,
    single_failure_experiment,
    vulnerable_data_experiment,
)
from repro.simulation.metrics import format_table


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    if args.paper_scale:
        return ExperimentConfig.paper_scale()
    return ExperimentConfig.quick(args.blocks)


def _run_fig8(args: argparse.Namespace) -> str:
    curves = me_curves(2, method=args.method)
    rows = [row for curve in curves for row in curve.as_rows()]
    return format_table(rows)


def _run_fig9(args: argparse.Namespace) -> str:
    curves = me_curves(4, method=args.method)
    rows = [row for curve in curves for row in curve.as_rows()]
    return format_table(rows)


def _run_fig6_7(args: argparse.Namespace) -> str:
    return format_table(complex_form_catalogue(method=args.method))


def _run_fig10(args: argparse.Namespace) -> str:
    return format_table([point.as_row() for point in figure10_comparison()])


def _run_fig11(args: argparse.Namespace) -> str:
    return format_table(data_loss_experiment(_config_from_args(args)))


def _run_fig12(args: argparse.Namespace) -> str:
    return format_table(vulnerable_data_experiment(_config_from_args(args)))


def _run_fig13(args: argparse.Namespace) -> str:
    return format_table(single_failure_experiment(_config_from_args(args)))


def _run_table4(args: argparse.Namespace) -> str:
    return format_table(costs_table())


def _run_table6(args: argparse.Namespace) -> str:
    return format_table(repair_rounds_experiment(_config_from_args(args)))


def _run_placement(args: argparse.Namespace) -> str:
    return format_table(placement_balance_report(_config_from_args(args)))


def _run_reliability(args: argparse.Namespace) -> str:
    results = five_year_comparison(trials=args.trials)
    rows = [
        {
            "layout": result.layout,
            "drives": result.drives,
            "loss probability (5y)": round(result.loss_probability, 4),
        }
        for result in results.values()
    ]
    return format_table(rows)


def _run_repair_cost(args: argparse.Namespace) -> str:
    from repro.simulation.metrics import PAPER_SCHEMES

    return format_table(single_failure_table(PAPER_SCHEMES, block_size=4096))


def _run_markov(args: argparse.Namespace) -> str:
    return format_table(five_year_loss_table())


def _run_churn(args: argparse.Namespace) -> str:
    trace = p2p_session_trace(
        40, 240.0, mean_session_hours=18.0, mean_downtime_hours=6.0, seed=17
    )
    schemes = [
        AEParameters.single(),
        AEParameters.double(2, 5),
        AEParameters.triple(2, 5),
        (8, 2),
        (5, 5),
        2,
        3,
    ]
    config = ChurnConfig(data_blocks=min(args.blocks, 20_000), sample_every_hours=12.0)
    return format_table(compare_schemes_under_churn(trace, schemes, config))


EXPERIMENTS: Dict[str, Callable[[argparse.Namespace], str]] = {
    "fig6-7": _run_fig6_7,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
    "fig10": _run_fig10,
    "fig11": _run_fig11,
    "fig12": _run_fig12,
    "fig13": _run_fig13,
    "table4": _run_table4,
    "table6": _run_table6,
    "placement": _run_placement,
    "reliability": _run_reliability,
    "repair-cost": _run_repair_cost,
    "markov": _run_markov,
    "churn": _run_churn,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the Alpha Entanglement Codes paper.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default="all",
        help="experiment id (fig6-7, fig8, ..., table6) or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument(
        "--blocks",
        type=int,
        default=100_000,
        help="number of data blocks for the disaster simulations (default 100k)",
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's full scale (1,000,000 data blocks)",
    )
    parser.add_argument(
        "--method",
        choices=["search", "family"],
        default="search",
        help="ME computation method for fig6-7/fig8/fig9",
    )
    parser.add_argument(
        "--trials", type=int, default=1000, help="Monte-Carlo trials for the reliability run"
    )
    return parser


def main(argv: List[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list:
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    if args.experiment == "all":
        for name in EXPERIMENTS:
            print(f"== {name} ==")
            print(EXPERIMENTS[name](args))
            print()
        return 0
    if args.experiment not in EXPERIMENTS:
        parser.error(
            f"unknown experiment {args.experiment!r}; use --list to see the options"
        )
    print(EXPERIMENTS[args.experiment](args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
