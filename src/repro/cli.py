"""Command line entry point: ``repro-experiments``.

Runs the paper's experiments, and drives the scheme-agnostic storage service
through three subcommands that all take ``--scheme`` (any identifier the
:mod:`repro.schemes` registry resolves: ``ae-3-2-5``, ``rs-10-4``,
``lrc-azure``, ``rep-3``, ``xor-geo``, ...)::

    repro-experiments --list
    repro-experiments fig11 --blocks 200000
    repro-experiments all --paper-scale
    repro-experiments ingest archive.tar --scheme rs-10-4 --verify
    repro-experiments ingest archive.tar --workers 4 --verify
    repro-experiments repair --scheme lrc-azure --fail 4
    repro-experiments compare --schemes ae-3-2-5,rs-10-4,rep-3
    repro-experiments compare --smoke
    repro-experiments simulate --schemes ae-3-2-5,lrc-azure,xor-geo --disaster 0.3
    repro-experiments simulate --churn trace.json --policy minimal
    repro-experiments simulate --smoke
    repro-experiments load --clients 8 --duration 5
    repro-experiments load --clients 8 --ops 50 --think-ms 1

Every experiment id names the table or figure of the paper it regenerates
(e.g. ``fig10`` is the write-performance comparison of Fig. 10, ``table4``
the repair-cost table of Table IV).  ``ingest`` pushes a file through the
batched :meth:`StorageService.put_stream` path and reports write throughput
(``--workers N`` fans the chunks out as part documents over the concurrent
front-end); ``repair`` injects a location disaster and repairs it;
``compare`` runs the same workload and failure trace across schemes and
prints measured storage overhead and repair reads next to the analytic
Table IV numbers; ``simulate`` runs the scheme-agnostic discrete-event
disaster/churn engine over any registered schemes at any disaster sizes;
``load`` drives the thread-pool front-end with a closed-loop multi-client
workload and reports ops/sec and latency percentiles.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional, Union

if TYPE_CHECKING:
    from repro.storage.topology import Topology

from repro.analysis.fault_tolerance import complex_form_catalogue, me_curves
from repro.analysis.markov import five_year_loss_table
from repro.analysis.reliability import five_year_comparison
from repro.analysis.repair_cost import single_failure_table
from repro.analysis.write_performance import figure10_comparison
from repro.core.parameters import AEParameters
from repro.simulation.churn import ChurnConfig, compare_schemes_under_churn
from repro.simulation.traces import p2p_session_trace
from repro.simulation.experiments import (
    ExperimentConfig,
    costs_table,
    data_loss_experiment,
    placement_balance_report,
    repair_rounds_experiment,
    single_failure_experiment,
    vulnerable_data_experiment,
)
from repro.simulation.metrics import format_table


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    if args.paper_scale:
        return ExperimentConfig.paper_scale()
    return ExperimentConfig.quick(args.blocks)


def _run_fig8(args: argparse.Namespace) -> str:
    curves = me_curves(2, method=args.method)
    rows = [row for curve in curves for row in curve.as_rows()]
    return format_table(rows)


def _run_fig9(args: argparse.Namespace) -> str:
    curves = me_curves(4, method=args.method)
    rows = [row for curve in curves for row in curve.as_rows()]
    return format_table(rows)


def _run_fig6_7(args: argparse.Namespace) -> str:
    return format_table(complex_form_catalogue(method=args.method))


def _run_fig10(args: argparse.Namespace) -> str:
    return format_table([point.as_row() for point in figure10_comparison()])


def _run_fig11(args: argparse.Namespace) -> str:
    return format_table(data_loss_experiment(_config_from_args(args)))


def _run_fig12(args: argparse.Namespace) -> str:
    return format_table(vulnerable_data_experiment(_config_from_args(args)))


def _run_fig13(args: argparse.Namespace) -> str:
    return format_table(single_failure_experiment(_config_from_args(args)))


def _run_table4(args: argparse.Namespace) -> str:
    return format_table(costs_table())


def _run_table6(args: argparse.Namespace) -> str:
    return format_table(repair_rounds_experiment(_config_from_args(args)))


def _run_placement(args: argparse.Namespace) -> str:
    return format_table(placement_balance_report(_config_from_args(args)))


def _run_reliability(args: argparse.Namespace) -> str:
    results = five_year_comparison(trials=args.trials)
    rows = [
        {
            "layout": result.layout,
            "drives": result.drives,
            "loss probability (5y)": round(result.loss_probability, 4),
        }
        for result in results.values()
    ]
    return format_table(rows)


def _run_repair_cost(args: argparse.Namespace) -> str:
    from repro.simulation.metrics import PAPER_SCHEMES

    return format_table(single_failure_table(PAPER_SCHEMES, block_size=4096))


def _run_markov(args: argparse.Namespace) -> str:
    return format_table(five_year_loss_table())


def _run_churn(args: argparse.Namespace) -> str:
    trace = p2p_session_trace(
        40, 240.0, mean_session_hours=18.0, mean_downtime_hours=6.0, seed=17
    )
    schemes = [
        AEParameters.single(),
        AEParameters.double(2, 5),
        AEParameters.triple(2, 5),
        (8, 2),
        (5, 5),
        2,
        3,
    ]
    config = ChurnConfig(data_blocks=min(args.blocks, 20_000), sample_every_hours=12.0)
    return format_table(compare_schemes_under_churn(trace, schemes, config))


EXPERIMENTS: Dict[str, Callable[[argparse.Namespace], str]] = {
    "fig6-7": _run_fig6_7,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
    "fig10": _run_fig10,
    "fig11": _run_fig11,
    "fig12": _run_fig12,
    "fig13": _run_fig13,
    "table4": _run_table4,
    "table6": _run_table6,
    "placement": _run_placement,
    "reliability": _run_reliability,
    "repair-cost": _run_repair_cost,
    "markov": _run_markov,
    "churn": _run_churn,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of the Alpha Entanglement Codes "
            "paper (DSN 2018), or run 'ingest' to push a file through the "
            "batched entanglement pipeline."
        ),
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default="all",
        help=(
            "experiment id ('fig6-7'..'fig13' for the paper's figures, "
            "'table4'/'table6' for its tables, 'placement', 'reliability', "
            "'repair-cost', 'markov', 'churn'), a subcommand ('ingest', "
            "'repair', 'compare', 'simulate', 'load'), or 'all'"
        ),
    )
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument(
        "--blocks",
        type=int,
        default=100_000,
        help=(
            "number of 4 KiB data blocks for the disaster simulations of "
            "Figs. 11-13 (default 100,000; the paper uses 1,000,000)"
        ),
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's full scale (1,000,000 data blocks, Sec. V-C)",
    )
    parser.add_argument(
        "--method",
        choices=["search", "family"],
        default="search",
        help=(
            "minimal-erasure computation for fig6-7/fig8/fig9: exhaustive "
            "'search' or the closed-form 'family' catalogue (paper, Sec. V-A)"
        ),
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=1000,
        help="Monte-Carlo trials (5-year disk traces) for the reliability run",
    )
    return parser


def _add_scheme_argument(parser: argparse.ArgumentParser) -> None:
    from repro.schemes import DEFAULT_SCHEME

    parser.add_argument(
        "--scheme",
        default=DEFAULT_SCHEME,
        help=(
            "redundancy scheme id from the repro.schemes registry "
            f"(default {DEFAULT_SCHEME}); e.g. ae-3-2-5, rs-10-4, lrc-azure, "
            "lrc-xorbas, rep-3, xor-geo, xor-raid5-5 (see docs/schemes.md)"
        ),
    )


def _add_backend_arguments(parser: argparse.ArgumentParser) -> None:
    from repro.storage import backends

    parser.add_argument(
        "--backend",
        default="memory",
        choices=backends.available(),
        help=(
            "storage backend for the block payloads (default 'memory'; "
            "'disk' and 'segment' persist under --data-dir, see "
            "docs/persistence.md)"
        ),
    )
    parser.add_argument(
        "--data-dir",
        default=None,
        metavar="DIR",
        help=(
            "root directory for persistent backends; reopening a directory "
            "that already holds a service manifest restores its documents"
        ),
    )
    parser.add_argument(
        "--fsync",
        action="store_true",
        help="fsync every durable write (power-loss safety at a latency cost)",
    )


def _add_shards_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="M",
        help=(
            "shard the document namespace across M independent services "
            "joined by a consistent-hash ring (default 1: a single service; "
            "see docs/sharding.md)"
        ),
    )


def _validate_shards_argument(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    if args.shards < 1:
        parser.error("--shards must be at least 1")


def _validate_backend_arguments(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    if args.backend != "memory" and args.data_dir is None:
        parser.error(f"--backend {args.backend} requires --data-dir")


def _add_topology_arguments(parser: argparse.ArgumentParser) -> None:
    from repro.storage import placement as placement_registry

    parser.add_argument(
        "--topology",
        default=None,
        metavar="SPEC",
        help=(
            "cluster topology: a compact spec like 'sites=3,racks=2,nodes=4', "
            "a topology JSON file, or a bare location count (overrides "
            "--locations; see docs/topology.md)"
        ),
    )
    parser.add_argument(
        "--placement",
        default=None,
        choices=placement_registry.available(),
        help=(
            "placement policy from the repro.storage.placement registry "
            "(default: the scheme's own; 'spread-domains' never co-locates "
            "a repair group inside one failure domain)"
        ),
    )


def _resolve_topology_argument(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> Optional["Topology"]:
    """Resolve ``--topology`` early so a bad spec or missing JSON file is a
    clean parser error instead of a traceback from deep inside open()."""
    if args.topology is None:
        return None
    from repro.exceptions import ReproError
    from repro.storage.topology import Topology

    try:
        return Topology.resolve(args.topology)
    except (ReproError, OSError) as exc:
        parser.error(f"cannot resolve --topology {args.topology!r}: {exc}")


def _parse_fail(parser: argparse.ArgumentParser, value: str) -> Union[int, str]:
    """``--fail`` accepts a location count or a topology target (site:0)."""
    cleaned = value.strip()
    if ":" in cleaned:
        return cleaned
    try:
        return int(cleaned)
    except ValueError:
        parser.error(
            f"--fail expects a location count or a topology target like "
            f"'site:0', not {value!r}"
        )


def build_ingest_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments ingest",
        description=(
            "Push a file through the batched ingest pipeline "
            "(StorageService.put_stream) under any redundancy scheme and "
            "report write throughput."
        ),
    )
    parser.add_argument("path", help="file to ingest, or '-' to read standard input")
    _add_scheme_argument(parser)
    parser.add_argument(
        "--spec",
        default=None,
        help=(
            "legacy AE setting AE(alpha,s,p); overrides --scheme with the "
            "matching entanglement scheme"
        ),
    )
    parser.add_argument(
        "--block-size",
        type=int,
        default=4096,
        help="data/redundancy block size in bytes (default 4096)",
    )
    parser.add_argument(
        "--batch-blocks",
        type=int,
        default=256,
        help="blocks encoded per vectorised batch (default 256, i.e. 1 MiB at 4 KiB blocks)",
    )
    parser.add_argument(
        "--locations",
        type=int,
        default=100,
        help="storage locations in the simulated cluster (default 100)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=1 << 20,
        help="bytes read from the input per chunk (default 1 MiB)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="stream the document back (get_stream) and check it byte-exact",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "concurrent ingest workers (default 1: the single-threaded "
            "put_stream path); with N > 1 every chunk becomes a part "
            "document pushed through the thread-pool front-end"
        ),
    )
    _add_shards_argument(parser)
    _add_backend_arguments(parser)
    _add_topology_arguments(parser)
    return parser


def build_repair_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments repair",
        description=(
            "Write a synthetic workload under any redundancy scheme, fail "
            "storage locations, run the scheme's live repair path and verify "
            "the document byte-exact."
        ),
    )
    _add_scheme_argument(parser)
    parser.add_argument(
        "--blocks", type=int, default=120, help="data blocks to write (default 120)"
    )
    parser.add_argument(
        "--block-size", type=int, default=1024, help="block size in bytes (default 1024)"
    )
    parser.add_argument(
        "--locations", type=int, default=40, help="cluster locations (default 40)"
    )
    parser.add_argument(
        "--fail",
        default="3",
        help=(
            "locations to fail: a count (default 3) or a topology target "
            "like 'site:0' / 'rack:0/1' (needs --topology)"
        ),
    )
    parser.add_argument("--seed", type=int, default=7, help="workload seed (default 7)")
    _add_shards_argument(parser)
    _add_backend_arguments(parser)
    _add_topology_arguments(parser)
    return parser


def build_compare_parser() -> argparse.ArgumentParser:
    from repro.system.compare import DEFAULT_COMPARE_SCHEMES

    parser = argparse.ArgumentParser(
        prog="repro-experiments compare",
        description=(
            "Run the same workload and failure trace across redundancy "
            "schemes and print measured storage overhead and repair reads "
            "next to the analytic Table IV numbers."
        ),
    )
    parser.add_argument(
        "--schemes",
        default=",".join(DEFAULT_COMPARE_SCHEMES),
        help="comma-separated scheme ids (default: the paper's comparison set)",
    )
    parser.add_argument(
        "--blocks",
        type=int,
        default=240,
        help="data blocks per workload (default 240, a multiple of every default stripe width)",
    )
    parser.add_argument(
        "--block-size", type=int, default=1024, help="block size in bytes (default 1024)"
    )
    parser.add_argument(
        "--locations", type=int, default=60, help="cluster locations (default 60)"
    )
    parser.add_argument(
        "--fail",
        default="3",
        help=(
            "locations to fail in the disaster trace: a count (default 3) "
            "or a topology target like 'site:0' (needs --topology)"
        ),
    )
    parser.add_argument("--seed", type=int, default=7, help="workload seed (default 7)")
    parser.add_argument(
        "--victims",
        type=int,
        default=3,
        help="data blocks probed for the measured single-failure repair cost (default 3)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny fast configuration for CI (60 blocks of 512 bytes, 30 locations)",
    )
    _add_shards_argument(parser)
    _add_backend_arguments(parser)
    _add_topology_arguments(parser)
    return parser


def build_simulate_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments simulate",
        description=(
            "Run the scheme-agnostic discrete-event disaster & churn "
            "simulation engine: disaster-recovery metrics (data loss, "
            "vulnerable data, repair rounds, single-failure fraction) for "
            "any registered schemes at any disaster sizes, plus optional "
            "churn-trace replay."
        ),
    )
    parser.add_argument(
        "--schemes",
        default="ae-3-2-5,rs-10-4,rep-3,lrc-azure,lrc-xorbas,xor-geo",
        help=(
            "comma-separated scheme ids from the repro.schemes registry "
            "(default covers the paper's families plus LRC and flat XOR)"
        ),
    )
    parser.add_argument(
        "--disaster",
        default="0.1,0.2,0.3,0.4,0.5",
        help=(
            "comma-separated disaster sizes: fractions in [0, 1] (default: "
            "the paper's 10%%-50%% range) and/or topology targets like "
            "'site:0' or 'rack:0/1' (targets need --topology)"
        ),
    )
    parser.add_argument(
        "--topology",
        default=None,
        metavar="SPEC",
        help=(
            "cluster topology ('sites=3,racks=2,nodes=4', a topology JSON "
            "file or a location count); overrides --locations and enables "
            "site/rack-targeted disasters"
        ),
    )
    parser.add_argument(
        "--blocks",
        type=int,
        default=20_000,
        help="data blocks per scheme (default 20,000; the paper uses 1,000,000)",
    )
    parser.add_argument(
        "--locations",
        type=int,
        default=100,
        help="storage locations (default 100, the paper's setup)",
    )
    parser.add_argument("--seed", type=int, default=7, help="placement/disaster seed (default 7)")
    parser.add_argument(
        "--policy",
        choices=["full", "minimal", "none"],
        default="full",
        help=(
            "maintenance policy: 'full' repairs data and redundancy, "
            "'minimal' repairs data only (the Fig. 12 regime), 'none' "
            "measures raw exposure"
        ),
    )
    parser.add_argument(
        "--max-repairs-per-round",
        type=int,
        default=None,
        help="optional MaintenanceBudget cap on blocks repaired per round",
    )
    parser.add_argument(
        "--churn",
        default=None,
        metavar="TRACE.json",
        help=(
            "replay a ChurnTrace JSON file (ChurnTrace.save format) through "
            "the event loop and print per-scheme availability"
        ),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny fast configuration for CI (2,000 blocks, 40 locations)",
    )
    return parser


def build_load_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments load",
        description=(
            "Drive the concurrent thread-pool front-end with a closed-loop "
            "multi-client mixed put/get/delete workload and report ops/sec "
            "and latency percentiles (see docs/architecture.md)."
        ),
    )
    _add_scheme_argument(parser)
    parser.add_argument(
        "--clients",
        type=int,
        default=8,
        help="closed-loop client threads (default 8)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="run wall-clock bounded for this many seconds (default 5)",
    )
    parser.add_argument(
        "--ops",
        type=int,
        default=None,
        help="run exactly this many operations per client instead of --duration",
    )
    parser.add_argument(
        "--think-ms",
        type=float,
        default=0.0,
        help="per-client think time between operations in milliseconds (default 0)",
    )
    parser.add_argument(
        "--payload-bytes",
        type=int,
        default=4096,
        help="document payload size in bytes (default 4096)",
    )
    parser.add_argument(
        "--documents",
        type=int,
        default=64,
        help="shared document name pool size (default 64; clients overlap)",
    )
    parser.add_argument(
        "--block-size", type=int, default=1024, help="block size in bytes (default 1024)"
    )
    parser.add_argument(
        "--locations", type=int, default=40, help="cluster locations (default 40)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="front-end worker threads (default: the client count)",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=None,
        help="admission queue bound (default: workers x 4); overflow bounces",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed (default 0)")
    _add_shards_argument(parser)
    _add_backend_arguments(parser)
    _add_topology_arguments(parser)
    return parser


def load_main(argv: List[str] | None = None) -> int:
    """Entry point of ``repro-experiments load``."""
    from repro.exceptions import ReproError
    from repro.system.frontend import ConcurrentStorageService
    from repro.system.loadgen import run_load
    from repro.system.service import StorageConfig

    parser = build_load_parser()
    args = parser.parse_args(argv)
    if args.clients < 1:
        parser.error("--clients must be at least 1")
    if args.ops is not None and args.duration is not None:
        parser.error("pass --ops or --duration, not both")
    if args.ops is None and args.duration is None:
        args.duration = 5.0
    _validate_shards_argument(parser, args)
    _validate_backend_arguments(parser, args)
    topology = _resolve_topology_argument(parser, args)
    workers = args.workers if args.workers is not None else args.clients
    config = StorageConfig(
        scheme=args.scheme,
        location_count=None if topology is not None else args.locations,
        block_size=args.block_size,
        seed=args.seed,
        backend=args.backend,
        data_dir=args.data_dir,
        fsync=args.fsync,
        topology=topology,
        placement=args.placement,
        shards=args.shards if args.shards > 1 else None,
    )
    try:
        if args.shards > 1:
            from repro.system.sharding import ShardedStorageService

            frontend = ShardedStorageService.open(
                config, workers=workers, queue_depth=args.queue_depth
            )
        else:
            frontend = ConcurrentStorageService.open(
                config, workers=workers, queue_depth=args.queue_depth
            )
    except (ReproError, ValueError) as exc:
        parser.error(str(exc))
    try:
        report = run_load(
            frontend,
            clients=args.clients,
            ops_per_client=args.ops,
            duration_seconds=args.duration,
            payload_bytes=args.payload_bytes,
            documents=args.documents,
            think_seconds=args.think_ms / 1000.0,
            seed=args.seed,
        )
    except (ReproError, ValueError) as exc:
        parser.error(str(exc))
    print(f"scheme       : {frontend.scheme_id if args.shards > 1 else frontend.service.scheme.scheme_id}")
    print(f"backend      : {args.backend}")
    if args.topology is not None and args.shards == 1:
        print(f"topology     : {frontend.service.topology.describe()}")
    if args.shards > 1:
        print(
            f"front-end    : {args.shards} shards x {workers} workers "
            f"(consistent-hash ring, {frontend.ring.vnodes} vnodes/shard)"
        )
    else:
        print(
            f"front-end    : {workers} workers, queue depth "
            f"{frontend.queue_depth}, {frontend.stripe_count} lock stripes"
        )
    print(
        f"workload     : {report.clients} clients, {args.payload_bytes} B "
        f"payloads over {args.documents} names, think {args.think_ms:.1f} ms"
    )
    print(
        f"operations   : {report.ops} ({report.puts} puts, {report.gets} gets, "
        f"{report.deletes} deletes; {report.misses} misses, "
        f"{report.overloads} overloads)"
    )
    print(
        f"throughput   : {report.ops_per_sec:.0f} ops/s over "
        f"{report.duration_seconds:.2f} s"
    )
    print(
        f"latency      : p50 {report.p50_seconds * 1e3:.2f} ms, "
        f"p99 {report.p99_seconds * 1e3:.2f} ms, "
        f"mean {report.mean_seconds * 1e3:.2f} ms"
    )
    if args.data_dir is not None:
        frontend.close()
        print(f"persisted    : {args.data_dir}")
    return 0


def simulate_main(argv: List[str] | None = None) -> int:
    """Entry point of ``repro-experiments simulate``."""
    from repro.exceptions import ReproError
    from repro.simulation.engine import SimulationEngine, simulate_disasters
    from repro.storage.failures import ChurnTrace
    from repro.storage.maintenance import MaintenanceBudget, MaintenancePolicy

    parser = build_simulate_parser()
    args = parser.parse_args(argv)
    if args.smoke:
        args.blocks = 2_000
        if args.topology is None:
            args.locations = 40
        if args.disaster == parser.get_default("disaster"):
            args.disaster = "0.1,0.3,0.5"
    scheme_ids = [scheme.strip() for scheme in args.schemes.split(",") if scheme.strip()]
    if not scheme_ids:
        parser.error("--schemes must name at least one scheme")
    fractions: List[object] = []
    for part in args.disaster.split(","):
        part = part.strip()
        if not part:
            continue
        if ":" in part:
            if args.topology is None:
                parser.error(f"disaster target {part!r} needs --topology")
            fractions.append(part)
            continue
        try:
            fractions.append(float(part))
        except ValueError as exc:
            parser.error(f"cannot parse --disaster fractions: {exc}")
    policy = MaintenancePolicy(args.policy)
    budget = (
        MaintenanceBudget(max_repairs_per_round=args.max_repairs_per_round)
        if args.max_repairs_per_round is not None
        else None
    )
    topology = _resolve_topology_argument(parser, args)
    if topology is not None:
        args.locations = topology.node_count
    try:
        results = simulate_disasters(
            scheme_ids,
            data_blocks=args.blocks,
            location_count=args.locations,
            seed=args.seed,
            fractions=fractions,
            policy=policy,
            budget=budget,
            topology=topology,
        )
    except (ReproError, ValueError) as exc:
        parser.error(str(exc))
    print(f"policy       : {policy.value} ({policy.describe()})")
    if topology is not None:
        print(f"topology     : {topology.describe()}")
    print(f"placement    : {args.blocks} data blocks over {args.locations} locations")
    print(format_table([metrics.as_row() for metrics in results]))
    if args.churn is not None:
        try:
            trace = ChurnTrace.load(args.churn)
        except OSError as exc:
            parser.error(f"cannot read {args.churn!r}: {exc.strerror or exc}")
        except ReproError as exc:
            parser.error(str(exc))
        runs = []
        try:
            for scheme_id in scheme_ids:
                engine = SimulationEngine(
                    scheme_id, args.blocks, args.locations, args.seed,
                    policy=policy, budget=budget, topology=topology,
                )
                runs.append(engine.run_events(trace))
        except ReproError as exc:
            parser.error(str(exc))
        print()
        print(f"churn replay : {args.churn} ({len(trace.events)} events)")
        print(format_table([run.as_row() for run in runs]))
    return 0


def _read_chunks(path: str, chunk_size: int) -> Iterator[bytes]:
    if path == "-":
        stream = sys.stdin.buffer
        while True:
            chunk = stream.read(chunk_size)
            if not chunk:
                return
            yield chunk
    else:
        with open(path, "rb") as stream:
            while True:
                chunk = stream.read(chunk_size)
                if not chunk:
                    return
                yield chunk


def ingest_main(argv: List[str] | None = None) -> int:
    """Entry point of ``repro-experiments ingest``."""
    from repro.codes.entanglement import ae_scheme_id
    from repro.core.parameters import AEParameters as _AEParameters
    from repro.exceptions import ReproError
    from repro.system.service import StorageConfig, StorageService

    parser = build_ingest_parser()
    args = parser.parse_args(argv)
    if args.chunk_size < 1:
        parser.error("--chunk-size must be at least 1 byte")
    if args.workers < 1:
        parser.error("--workers must be at least 1")
    _validate_shards_argument(parser, args)
    _validate_backend_arguments(parser, args)
    topology = _resolve_topology_argument(parser, args)
    frontend = None
    try:
        scheme_id = args.scheme
        if args.spec is not None:
            scheme_id = ae_scheme_id(_AEParameters.parse(args.spec))
        config = StorageConfig(
            scheme=scheme_id,
            location_count=None if topology is not None else args.locations,
            block_size=args.block_size,
            batch_blocks=args.batch_blocks,
            backend=args.backend,
            data_dir=args.data_dir,
            fsync=args.fsync,
            topology=topology,
            placement=args.placement,
            shards=args.shards if args.shards > 1 else None,
        )
        if args.shards > 1:
            from repro.system.sharding import ShardedStorageService

            service = ShardedStorageService.open(config, workers=args.workers)
        else:
            service = StorageService.open(config)
        started = time.perf_counter()
        if args.workers > 1:
            # Fan the chunks out as part documents over the thread-pool
            # front-end (per shard when sharded: part names spread over the
            # ring); a bounded window of in-flight futures keeps the
            # admission queues from bouncing our own submissions.
            if args.shards > 1:
                submit = service.put_async
            else:
                from repro.system.frontend import ConcurrentStorageService

                frontend = ConcurrentStorageService(service, workers=args.workers)
                submit = frontend.put_async
            parts = []
            futures = []
            for chunk in _read_chunks(args.path, args.chunk_size):
                if len(futures) >= args.workers * 2:
                    parts.append(futures.pop(0).result())
                futures.append(
                    submit(f"ingest/part-{len(parts) + len(futures):05d}", chunk)
                )
            parts.extend(future.result() for future in futures)
            length = sum(part.length for part in parts)
            block_count = sum(part.block_count for part in parts)
            part_count = len(parts)
        else:
            document = service.put_stream(
                "ingest", _read_chunks(args.path, args.chunk_size)
            )
            length, block_count = document.length, document.block_count
    except (ReproError, ValueError) as exc:
        parser.error(str(exc))
    except OSError as exc:
        parser.error(f"cannot read {args.path!r}: {exc.strerror or exc}")
    elapsed = time.perf_counter() - started
    throughput = length / elapsed / 1e6 if elapsed > 0 else float("inf")
    if args.shards > 1:
        total_blocks = service.status().blocks
    else:
        total_blocks = service.cluster.stats().blocks
    redundancy = total_blocks - block_count
    print(f"code setting : {service.capabilities.name}")
    print(f"scheme       : {service.scheme.scheme_id}")
    print(f"backend      : {args.backend}")
    if args.shards > 1:
        print(
            f"shards       : {args.shards} independent services on a "
            f"consistent-hash ring"
        )
    if args.topology is not None and args.shards == 1:
        print(f"topology     : {service.topology.describe()}")
    if args.placement is not None and args.shards == 1:
        print(f"placement    : {service.cluster.placement.describe()}")
    if args.workers > 1:
        print(f"workers      : {args.workers} ({part_count} part documents)")
    print(f"ingested     : {length} bytes in {block_count} blocks")
    print(f"redundancy   : {redundancy} blocks")
    print(f"elapsed      : {elapsed:.3f} s")
    print(f"throughput   : {throughput:.1f} MB/s")
    exit_code = 0
    if args.verify:
        if args.workers > 1:
            names = [f"ingest/part-{index:05d}" for index in range(part_count)]
            if args.shards > 1:
                # Scatter-gather bulk read across the shards.
                read_back = b"".join(service.get_many(names))
            else:
                read_back = b"".join(frontend.get(name) for name in names)
        else:
            read_back = b"".join(service.get_stream("ingest"))
        if len(read_back) != length:
            print("verify       : FAILED (length mismatch)")
            exit_code = 1
        elif args.path == "-":
            print("verify       : OK (length match; stdin content not re-readable)")
        else:
            with open(args.path, "rb") as stream:
                original = stream.read()
            if read_back != original:
                print("verify       : FAILED (content mismatch)")
                exit_code = 1
            else:
                print("verify       : OK (byte-exact round trip)")
    if args.data_dir is not None:
        if frontend is not None:
            frontend.close()
        else:
            service.close()
        print(f"persisted    : {args.data_dir} (reopen with the same --scheme/--backend)")
    return exit_code


def repair_main(argv: List[str] | None = None) -> int:
    """Entry point of ``repro-experiments repair``."""
    from repro.exceptions import ReproError
    from repro.system.service import StorageConfig, StorageService

    parser = build_repair_parser()
    args = parser.parse_args(argv)
    fail = _parse_fail(parser, args.fail)
    if isinstance(fail, str) and args.topology is None:
        parser.error(f"--fail {fail!r} targets a topology domain; add --topology")
    _validate_shards_argument(parser, args)
    _validate_backend_arguments(parser, args)
    topology = _resolve_topology_argument(parser, args)
    rng = random.Random(args.seed)
    payload = rng.randbytes(args.blocks * args.block_size)
    try:
        config = StorageConfig(
            scheme=args.scheme,
            location_count=None if topology is not None else args.locations,
            block_size=args.block_size,
            seed=args.seed,
            backend=args.backend,
            data_dir=args.data_dir,
            fsync=args.fsync,
            topology=topology,
            placement=args.placement,
            shards=args.shards if args.shards > 1 else None,
        )
        if args.shards > 1:
            from repro.system.sharding import ShardedStorageService

            service = ShardedStorageService.open(config)
            probe = service.shard(service.shard_ids[0]).service
        else:
            service = StorageService.open(config)
            probe = service
        if isinstance(fail, str):
            failed = sorted(probe.topology.locations_for_target(fail))
        else:
            if not 0 <= fail <= probe.cluster.location_count:
                parser.error("--fail must lie between 0 and the location count")
            failed = rng.sample(range(probe.cluster.location_count), fail)
        service.put("workload", payload)
        if args.shards > 1:
            # The same location ids go down on every shard; each shard
            # repairs its own disaster independently.
            for shard_id in service.shard_ids:
                service.fail_locations(failed, shard_id)
            report = service.repair()
        else:
            service.fail_locations(failed)
            report = service.repair()
    except (ReproError, ValueError) as exc:
        parser.error(str(exc))
    print(f"code setting : {service.capabilities.name}")
    print(f"scheme       : {service.scheme.scheme_id}")
    if args.shards > 1:
        print(
            f"shards       : {args.shards} independent services on a "
            f"consistent-hash ring"
        )
    if args.topology is not None:
        print(f"topology     : {probe.topology.describe()}")
    if args.placement is not None:
        print(f"placement    : {probe.cluster.placement.describe()}")
    label = f" ({fail})" if isinstance(fail, str) else ""
    per_shard = " per shard" if args.shards > 1 else ""
    print(f"failed       : locations {sorted(failed)}{label}{per_shard}")
    print(f"repair       : {report.summary()}")
    try:
        intact = service.get("workload") == payload
    except ReproError:
        intact = False
    print(f"verify       : {'OK (byte-exact round trip)' if intact else 'FAILED (data loss)'}")
    if args.data_dir is not None:
        service.restore_locations()
        service.close()
        print(f"persisted    : {args.data_dir}")
    return 0 if intact else 1


def compare_main(argv: List[str] | None = None) -> int:
    """Entry point of ``repro-experiments compare``."""
    from repro.exceptions import ReproError
    from repro.simulation.metrics import format_table
    from repro.system.compare import compare_schemes

    parser = build_compare_parser()
    args = parser.parse_args(argv)
    if args.smoke:
        args.blocks, args.block_size = 60, 512
        args.victims = 2
        if args.topology is None:
            args.locations = 30
        if args.fail == parser.get_default("fail"):
            args.fail = "2"
    fail = _parse_fail(parser, args.fail)
    if isinstance(fail, str) and args.topology is None:
        parser.error(f"--fail {fail!r} targets a topology domain; add --topology")
    _validate_shards_argument(parser, args)
    _validate_backend_arguments(parser, args)
    topology = _resolve_topology_argument(parser, args)
    scheme_ids = [scheme.strip() for scheme in args.schemes.split(",") if scheme.strip()]
    if not scheme_ids:
        parser.error("--schemes must name at least one scheme")
    try:
        results = compare_schemes(
            scheme_ids,
            data_blocks=args.blocks,
            block_size=args.block_size,
            location_count=args.locations,
            fail_locations=fail if isinstance(fail, int) else 0,
            seed=args.seed,
            victims=args.victims,
            backend=args.backend,
            data_dir=args.data_dir,
            fsync=args.fsync,
            topology=topology,
            placement=args.placement,
            fail_target=fail if isinstance(fail, str) else None,
            shards=args.shards,
        )
    except (ReproError, ValueError) as exc:
        parser.error(str(exc))
    print(format_table([result.as_row() for result in results]))
    mismatched = [r.scheme_id for r in results if not r.reads_match_analytic]
    if mismatched:
        print(f"measured single-failure reads DIVERGE from Table IV for: {mismatched}")
        return 1
    print("measured single-failure reads match the analytic Table IV costs")
    return 0


def build_transition_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments transition",
        description=(
            "Write documents under one redundancy scheme, then migrate the "
            "live service through a chain of schemes (alpha raises, "
            "puncturing, cross-family re-encodes) verifying every document "
            "byte-exact after each hop."
        ),
    )
    _add_scheme_argument(parser)
    parser.add_argument(
        "--to",
        default="ae-3-2-5,rs-10-4",
        help=(
            "comma-separated chain of target scheme ids, applied in order "
            "(default 'ae-3-2-5,rs-10-4': re-encode into the lattice, then "
            "into Reed-Solomon)"
        ),
    )
    parser.add_argument(
        "--docs", type=int, default=6, help="documents to write (default 6)"
    )
    parser.add_argument(
        "--doc-size",
        type=int,
        default=8192,
        help="bytes per document (default 8192)",
    )
    parser.add_argument(
        "--block-size", type=int, default=1024, help="block size in bytes (default 1024)"
    )
    parser.add_argument(
        "--locations", type=int, default=40, help="cluster locations (default 40)"
    )
    parser.add_argument("--seed", type=int, default=7, help="workload seed (default 7)")
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help=(
            "front-end workers (default 2); the transition runs behind the "
            "front-end's writer-preferring maintenance lock while reads "
            "keep streaming"
        ),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: 4 small documents through the default chain",
    )
    _add_shards_argument(parser)
    _add_backend_arguments(parser)
    return parser


def transition_main(argv: List[str] | None = None) -> int:
    """Entry point of ``repro-experiments transition``."""
    from repro.exceptions import ReproError
    from repro.system.frontend import ConcurrentStorageService
    from repro.system.service import StorageConfig, StorageService

    parser = build_transition_parser()
    args = parser.parse_args(argv)
    if args.smoke:
        args.docs, args.doc_size, args.block_size, args.locations = 4, 4096, 512, 24
    _validate_shards_argument(parser, args)
    _validate_backend_arguments(parser, args)
    targets = [target.strip() for target in args.to.split(",") if target.strip()]
    if not targets:
        parser.error("--to must name at least one target scheme")
    rng = random.Random(args.seed)
    payloads = {
        f"doc-{index:03d}": rng.randbytes(args.doc_size) for index in range(args.docs)
    }
    intact = True
    try:
        config = StorageConfig(
            scheme=args.scheme,
            location_count=args.locations,
            block_size=args.block_size,
            seed=args.seed,
            backend=args.backend,
            data_dir=args.data_dir,
            fsync=args.fsync,
            shards=args.shards if args.shards > 1 else None,
        )
        if args.shards > 1:
            from repro.system.sharding import ShardedStorageService

            sharded = ShardedStorageService.open(config)
            for name, payload in payloads.items():
                sharded.put(name, payload)
            print(f"scheme       : {args.scheme} ({args.shards} shards)")
            print(f"documents    : {args.docs} x {args.doc_size} bytes")
            for target in targets:
                reports = sharded.transition_to(target)
                migrated = sum(
                    report.documents_migrated
                    for report in reports.values()
                    if report is not None
                )
                hop_ok = all(
                    sharded.get(name) == payload for name, payload in payloads.items()
                )
                intact = intact and hop_ok
                print(
                    f"transition   : -> {target}: {len(reports)} shards, "
                    f"{migrated} documents migrated, reads "
                    f"{'byte-exact' if hop_ok else 'MISMATCH'}"
                )
            sharded.close()
        else:
            frontend = ConcurrentStorageService.open(config, workers=args.workers)
            for name, payload in payloads.items():
                frontend.put(name, payload)
            print(f"scheme       : {frontend.service.scheme.scheme_id}")
            print(f"documents    : {args.docs} x {args.doc_size} bytes")
            for target in targets:
                report = frontend.transition_to(target)
                hop_ok = all(
                    frontend.get(name) == payload for name, payload in payloads.items()
                )
                intact = intact and hop_ok
                summary = report.summary() if report is not None else f"-> {target}: no-op"
                print(
                    f"transition   : {summary}, reads "
                    f"{'byte-exact' if hop_ok else 'MISMATCH'}"
                )
            frontend.close()
    except (ReproError, ValueError) as exc:
        parser.error(str(exc))
    print(
        f"verify       : "
        f"{'OK (byte-exact after every hop)' if intact else 'FAILED (data mismatch)'}"
    )
    if args.data_dir is not None:
        print(f"persisted    : {args.data_dir}")
    return 0 if intact else 1


#: Subcommands with their own option sets (must come first on the command line).
SUBCOMMANDS: Dict[str, Callable[[List[str]], int]] = {
    "ingest": ingest_main,
    "repair": repair_main,
    "compare": compare_main,
    "simulate": simulate_main,
    "load": load_main,
    "transition": transition_main,
}


def main(argv: List[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in SUBCOMMANDS:
        return SUBCOMMANDS[argv[0]](argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list:
        for name in sorted([*EXPERIMENTS, *SUBCOMMANDS]):
            print(name)
        return 0
    if args.experiment in SUBCOMMANDS:
        # Reached when flags precede the subcommand; subcommands have their
        # own option sets and must come first.
        parser.error(
            f"{args.experiment!r} takes its own options and must be the first "
            f"argument: repro-experiments {args.experiment} [--scheme ...]"
        )
    if args.experiment == "all":
        for name in EXPERIMENTS:
            print(f"== {name} ==")
            print(EXPERIMENTS[name](args))
            print()
        return 0
    if args.experiment not in EXPERIMENTS:
        parser.error(
            f"unknown experiment {args.experiment!r}; use --list to see the options"
        )
    print(EXPERIMENTS[args.experiment](args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
