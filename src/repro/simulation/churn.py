"""Churn simulator: availability and durability under continuous instability.

The paper's main evaluation applies one-shot disasters (Section V-C); its
motivation, however, is the *continuously* unreliable environment -- a p2p
network where "nodes join and leave frequently" and "maintenance swallows up
most of the node's resources".  This module adds the missing dynamic view: a
time-stepped simulator that replays a :class:`~repro.simulation.traces.SessionTrace`
over the scheme-agnostic simulation engine and reports, per time step,

* **instantaneous availability** -- the fraction of data blocks that can be
  served right now, either directly or by decoding from online blocks;
* **unavailable data** -- blocks the decoder cannot reach at that instant;
* **durability** -- data permanently lost when the simulation ends and only
  the nodes still online (plus any that will eventually return) hold blocks.

Schemes are resolved through the :mod:`repro.schemes` registry (the same
placements as the disaster experiments), so any registered scheme --
including LRC and flat XOR, which the legacy per-scheme models could not
simulate -- can be put under churn.  Availability is usually summarised in
"nines" (``-log10(1 - availability)``); the Blake & Rodrigues observation
quoted in the paper -- replication needs enormous overhead to reach high
availability while erasure codes get there much more cheaply -- falls out of
this metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import InvalidParametersError
from repro.simulation.engine import SimulatedPlacement, build_simulation
from repro.simulation.metrics import SchemeSpec, describe_scheme
from repro.simulation.traces import SessionTrace

__all__ = [
    "ChurnConfig",
    "ChurnSample",
    "ChurnResult",
    "ChurnSimulator",
    "availability_nines",
    "compare_schemes_under_churn",
]


def availability_nines(availability: float) -> float:
    """Express an availability fraction as a number of nines.

    ``0.999`` -> 3.0; a perfect 1.0 is capped at 9 nines to keep tables finite.
    """
    if not 0.0 <= availability <= 1.0:
        raise InvalidParametersError("availability must lie in [0, 1]")
    if availability >= 1.0:
        return 9.0
    return -math.log10(1.0 - availability)


@dataclass(frozen=True)
class ChurnConfig:
    """Size and sampling parameters of a churn simulation."""

    data_blocks: int = 20_000
    sample_every_hours: float = 6.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.data_blocks < 1:
            raise InvalidParametersError("data_blocks must be positive")
        if self.sample_every_hours <= 0:
            raise InvalidParametersError("sample_every_hours must be positive")


@dataclass(frozen=True)
class ChurnSample:
    """State of one scheme at one sampled instant."""

    time_hours: float
    offline_locations: int
    unavailable_data: int
    data_blocks: int

    @property
    def availability(self) -> float:
        if self.data_blocks == 0:
            return 1.0
        return 1.0 - self.unavailable_data / self.data_blocks


@dataclass
class ChurnResult:
    """Full time series plus summary metrics for one scheme."""

    scheme: str
    storage_overhead_percent: float
    samples: List[ChurnSample] = field(default_factory=list)
    final_data_loss: int = 0

    @property
    def data_blocks(self) -> int:
        return self.samples[0].data_blocks if self.samples else 0

    @property
    def mean_availability(self) -> float:
        if not self.samples:
            return 1.0
        return float(np.mean([sample.availability for sample in self.samples]))

    @property
    def min_availability(self) -> float:
        if not self.samples:
            return 1.0
        return float(np.min([sample.availability for sample in self.samples]))

    @property
    def mean_nines(self) -> float:
        return availability_nines(self.mean_availability)

    @property
    def unavailability_block_hours(self) -> float:
        """Integral of unavailable data over time (block-hours of outage)."""
        if len(self.samples) < 2:
            return 0.0
        total = 0.0
        for previous, current in zip(self.samples, self.samples[1:]):
            dt = current.time_hours - previous.time_hours
            total += previous.unavailable_data * dt
        return total

    def as_row(self) -> Dict[str, object]:
        return {
            "scheme": self.scheme,
            "additional storage (%)": round(self.storage_overhead_percent, 1),
            "mean availability": round(self.mean_availability, 6),
            "mean nines": round(self.mean_nines, 2),
            "min availability": round(self.min_availability, 6),
            "outage (block-hours)": round(self.unavailability_block_hours, 1),
            "data loss at end": self.final_data_loss,
        }


class ChurnSimulator:
    """Replay a session trace against the engine's placement of each scheme."""

    def __init__(self, trace: SessionTrace, config: Optional[ChurnConfig] = None) -> None:
        self._trace = trace
        self._config = config or ChurnConfig()

    @property
    def trace(self) -> SessionTrace:
        return self._trace

    @property
    def config(self) -> ChurnConfig:
        return self._config

    # ------------------------------------------------------------------
    # Model construction
    # ------------------------------------------------------------------
    def _build_model(self, spec: SchemeSpec) -> SimulatedPlacement:
        return build_simulation(
            spec,
            self._config.data_blocks,
            self._trace.node_count,
            seed=self._config.seed,
        )

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def _sample_times(self) -> List[float]:
        step = self._config.sample_every_hours
        count = max(int(self._trace.horizon_hours // step), 1)
        return [step * index for index in range(count + 1) if step * index < self._trace.horizon_hours]

    def run(self, spec: SchemeSpec) -> ChurnResult:
        """Simulate one scheme over the whole trace."""
        description = describe_scheme(spec)
        model = self._build_model(spec)
        samples: List[ChurnSample] = []
        for time in self._sample_times():
            offline = np.flatnonzero(self._trace.offline_mask_at(time))
            unavailable = model.unavailable_data(offline)
            samples.append(
                ChurnSample(
                    time_hours=time,
                    offline_locations=int(offline.size),
                    unavailable_data=unavailable,
                    data_blocks=self._config.data_blocks,
                )
            )
        # Durability: whoever is offline at the end of the horizon (including
        # permanent departures) no longer contributes blocks.
        final_offline = np.flatnonzero(
            self._trace.offline_mask_at(self._trace.horizon_hours - 1e-9)
        )
        final_loss = model.unavailable_data(final_offline)
        return ChurnResult(
            scheme=description.name,
            storage_overhead_percent=description.additional_storage_percent,
            samples=samples,
            final_data_loss=final_loss,
        )

    def run_many(self, specs: Sequence[SchemeSpec]) -> List[ChurnResult]:
        return [self.run(spec) for spec in specs]


def compare_schemes_under_churn(
    trace: SessionTrace,
    specs: Sequence[SchemeSpec],
    config: Optional[ChurnConfig] = None,
) -> List[Dict[str, object]]:
    """One row per scheme: availability nines, outage block-hours, final loss."""
    simulator = ChurnSimulator(trace, config)
    return [result.as_row() for result in simulator.run_many(specs)]
