"""Synthetic workload generation for simulations, examples and benchmarks.

The paper's experiments use synthetically generated blocks (Sec. V-C); the
examples additionally need realistic-looking payloads to exercise the real
encoder/decoder.  This module provides both: metadata-only block populations
for the vectorised simulator and byte payload generators for the system-level
code paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.exceptions import InvalidParametersError


@dataclass(frozen=True)
class WorkloadSpec:
    """Description of a synthetic workload."""

    block_count: int
    block_size: int = 4096
    seed: int = 0
    compressible: bool = False

    def total_bytes(self) -> int:
        return self.block_count * self.block_size


def payload_stream(spec: WorkloadSpec) -> Iterator[bytes]:
    """Yield ``block_count`` payloads of ``block_size`` bytes.

    ``compressible=True`` produces low-entropy payloads (repeated runs), which
    is handy when examples want to show size numbers; the default is
    uniformly random bytes, the worst case for any dedup/compression layer and
    representative of encrypted archival data.
    """
    if spec.block_count < 0 or spec.block_size <= 0:
        raise InvalidParametersError("workload requires positive block size/count")
    rng = np.random.default_rng(spec.seed)
    for index in range(spec.block_count):
        if spec.compressible:
            value = (index * 37 + spec.seed) % 251
            yield bytes([value]) * spec.block_size
        else:
            yield rng.integers(0, 256, size=spec.block_size, dtype=np.uint8).tobytes()


def document_bytes(size: int, seed: int = 0) -> bytes:
    """A pseudo-random document of ``size`` bytes (deterministic given the seed)."""
    if size < 0:
        raise InvalidParametersError("size must be non-negative")
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()


def mixed_file_sizes(
    count: int, median_kib: float = 64.0, seed: int = 0, max_kib: float = 4096.0
) -> List[int]:
    """File sizes drawn from a log-normal distribution (archive-like mixes).

    Used by the backup example to build a workload resembling a user's home
    directory: many small files, a long tail of large ones.
    """
    if count < 0:
        raise InvalidParametersError("count must be non-negative")
    rng = np.random.default_rng(seed)
    sizes = rng.lognormal(mean=np.log(median_kib * 1024.0), sigma=1.1, size=count)
    return [int(min(max(size, 256), max_kib * 1024.0)) for size in sizes]
