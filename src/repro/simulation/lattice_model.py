"""Vectorised availability model of an AE lattice (legacy shim).

.. deprecated::
    This module is kept for backwards compatibility.  The vectorised lattice
    simulation now lives in :class:`repro.simulation.engine.LatticeSimulation`
    (the scheme-agnostic engine's AE adapter); :class:`AELatticeModel` is a
    thin shim over it that preserves the historical constructor and the
    ``run_repair(failed, repair_parities=..., max_rounds=...)`` ->
    :class:`LatticeRepairOutcome` surface.  New code should use
    :class:`~repro.simulation.engine.SimulationEngine` with an ``ae-*``
    registry identifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.core.parameters import AEParameters
from repro.simulation.engine import (
    EngineOutcome,
    LatticeSimulation,
    vectorised_input_indices,
    vectorised_output_indices,
)
from repro.storage.maintenance import MaintenancePolicy

__all__ = [
    "AELatticeModel",
    "LatticeRepairOutcome",
    "vectorised_input_indices",
    "vectorised_output_indices",
]


@dataclass
class LatticeRepairOutcome:
    """Result of running repair rounds on the vectorised lattice model."""

    scheme: str
    data_blocks: int
    initially_missing_data: int
    initially_missing_parities: int
    repaired_data: int
    repaired_parities: int
    data_repaired_first_round: int
    rounds: int
    repaired_per_round: List[int] = field(default_factory=list)
    data_loss: int = 0
    vulnerable_data: int = 0

    @property
    def single_failure_fraction(self) -> float:
        """Fraction of repaired data blocks fixed in the first round (Fig. 13)."""
        if self.repaired_data == 0:
            return 0.0
        return self.data_repaired_first_round / self.repaired_data

    @classmethod
    def from_engine(cls, outcome: EngineOutcome) -> "LatticeRepairOutcome":
        return cls(
            scheme=outcome.scheme,
            data_blocks=outcome.data_blocks,
            initially_missing_data=outcome.initially_missing_data,
            initially_missing_parities=outcome.initially_missing_redundancy,
            repaired_data=outcome.repaired_data,
            repaired_parities=outcome.repaired_redundancy,
            data_repaired_first_round=outcome.single_failure_repairs,
            rounds=outcome.rounds,
            repaired_per_round=list(outcome.repaired_per_round),
            data_loss=outcome.data_loss,
            vulnerable_data=outcome.vulnerable_data,
        )


class AELatticeModel(LatticeSimulation):
    """Availability-only model of an AE(alpha, s, p) lattice (legacy shim).

    .. deprecated::
        Thin shim over :class:`~repro.simulation.engine.LatticeSimulation`;
        kept so historical call sites (and their fixed-seed results) remain
        intact.  Prefer the scheme-agnostic
        :class:`~repro.simulation.engine.SimulationEngine`.
    """

    def __init__(
        self,
        params: AEParameters,
        data_blocks: int,
        location_count: int = 100,
        seed: int = 0,
    ) -> None:
        super().__init__(params, data_blocks, location_count, seed)

    def run_repair(
        self,
        failed_locations: np.ndarray,
        repair_parities: bool = True,
        max_rounds: int = 200,
    ) -> LatticeRepairOutcome:
        """Round-based repair until a fixpoint (or ``max_rounds``).

        ``repair_parities=False`` models minimal maintenance: parities are
        not rebuilt, only data blocks are (Fig. 12).
        """
        policy = (
            MaintenancePolicy.FULL if repair_parities else MaintenancePolicy.MINIMAL
        )
        outcome = super(AELatticeModel, self).run_repair(
            failed_locations, policy=policy, max_rounds=max_rounds
        )
        return LatticeRepairOutcome.from_engine(outcome)
