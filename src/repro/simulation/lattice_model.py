"""Vectorised availability model of an AE lattice for large-scale simulations.

The disaster-recovery experiments of the paper (Figs. 11-13, Table VI) use one
million data blocks.  Simulating them with payload-carrying objects would be
needlessly slow: the experiment only needs to know *which* blocks are
available, not their contents (exactly like the paper's table-driven
simulation of Table V).  This module therefore keeps the whole lattice as a
handful of numpy arrays:

* ``data_available``   -- shape ``(n,)`` booleans;
* ``parity_available`` -- shape ``(n, alpha)`` booleans, entry ``(i, c)`` being
  the parity created by node ``i+1`` on strand class ``c``;
* ``input_creator``    -- shape ``(n, alpha)`` int64, the creator of the input
  parity of node ``i+1`` on class ``c`` (0 at strand starts).

Repair rounds are whole-array operations, so a 50% disaster over a million
blocks takes seconds rather than hours.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.parameters import AEParameters, StrandClass
from repro.exceptions import InvalidParametersError


def vectorised_input_indices(params: AEParameters, n: int) -> np.ndarray:
    """Input-parity creators for nodes ``1..n`` and every strand class.

    Returns an ``(n, alpha)`` int64 array; entry 0 means "virtual zero parity"
    (the strand starts at that node).  This is the vectorised equivalent of
    :func:`repro.core.rules.input_index`.
    """
    indices = np.arange(1, n + 1, dtype=np.int64)
    s, p = params.s, params.p
    columns = []
    for strand_class in params.strand_classes:
        if strand_class is StrandClass.HORIZONTAL:
            h = indices - s
        elif s == 1:
            h = indices - p
        else:
            remainder = indices % s
            is_top = remainder == 1
            is_bottom = remainder == 0
            if strand_class is StrandClass.RIGHT_HANDED:
                h = np.where(
                    is_top,
                    indices - s * p + (s * s - 1),
                    indices - (s + 1),
                )
            else:  # left-handed
                h = np.where(
                    is_bottom,
                    indices - s * p + (s - 1) ** 2,
                    indices - (s - 1),
                )
        columns.append(np.maximum(h, 0))
    return np.stack(columns, axis=1)


def vectorised_output_indices(params: AEParameters, n: int) -> np.ndarray:
    """Successor nodes ``j`` for nodes ``1..n`` and every class (Table II)."""
    indices = np.arange(1, n + 1, dtype=np.int64)
    s, p = params.s, params.p
    columns = []
    for strand_class in params.strand_classes:
        if strand_class is StrandClass.HORIZONTAL:
            j = indices + s
        elif s == 1:
            j = indices + p
        else:
            remainder = indices % s
            is_top = remainder == 1
            is_bottom = remainder == 0
            if strand_class is StrandClass.RIGHT_HANDED:
                j = np.where(
                    is_bottom,
                    indices + s * p - (s * s - 1),
                    indices + s + 1,
                )
            else:  # left-handed
                j = np.where(
                    is_top,
                    indices + s * p - (s - 1) ** 2,
                    indices + s - 1,
                )
        columns.append(j)
    return np.stack(columns, axis=1)


@dataclass
class LatticeRepairOutcome:
    """Result of running repair rounds on the vectorised lattice model."""

    scheme: str
    data_blocks: int
    initially_missing_data: int
    initially_missing_parities: int
    repaired_data: int
    repaired_parities: int
    data_repaired_first_round: int
    rounds: int
    repaired_per_round: List[int] = field(default_factory=list)
    data_loss: int = 0
    vulnerable_data: int = 0

    @property
    def single_failure_fraction(self) -> float:
        """Fraction of repaired data blocks fixed in the first round (Fig. 13)."""
        if self.repaired_data == 0:
            return 0.0
        return self.data_repaired_first_round / self.repaired_data


class AELatticeModel:
    """Availability-only model of an AE(alpha, s, p) lattice with ``n`` data blocks."""

    def __init__(
        self,
        params: AEParameters,
        data_blocks: int,
        location_count: int = 100,
        seed: int = 0,
    ) -> None:
        if data_blocks < 1:
            raise InvalidParametersError("data_blocks must be positive")
        if location_count < 1:
            raise InvalidParametersError("location_count must be positive")
        self._params = params
        self._n = data_blocks
        self._locations = location_count
        rng = np.random.default_rng(seed)
        alpha = params.alpha
        #: Random placement: every block (data and parity) gets a location.
        self.data_location = rng.integers(0, location_count, size=data_blocks, dtype=np.int64)
        self.parity_location = rng.integers(
            0, location_count, size=(data_blocks, alpha), dtype=np.int64
        )
        #: Lattice wiring.
        self.input_creator = vectorised_input_indices(params, data_blocks)
        self.output_node = vectorised_output_indices(params, data_blocks)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def params(self) -> AEParameters:
        return self._params

    @property
    def data_blocks(self) -> int:
        return self._n

    @property
    def parity_blocks(self) -> int:
        return self._n * self._params.alpha

    @property
    def total_blocks(self) -> int:
        return self._n + self.parity_blocks

    @property
    def location_count(self) -> int:
        return self._locations

    def blocks_per_location(self) -> np.ndarray:
        """Histogram of blocks per location (placement balance check)."""
        counts = np.bincount(self.data_location, minlength=self._locations)
        counts = counts + np.bincount(
            self.parity_location.ravel(), minlength=self._locations
        )
        return counts

    # ------------------------------------------------------------------
    # Disaster + repair
    # ------------------------------------------------------------------
    def availability_after(self, failed_locations: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Initial availability arrays after the given locations fail."""
        failed_mask = np.zeros(self._locations, dtype=bool)
        failed_mask[np.asarray(failed_locations, dtype=np.int64)] = True
        data_available = ~failed_mask[self.data_location]
        parity_available = ~failed_mask[self.parity_location]
        return data_available, parity_available

    def _input_parity_available(self, parity_available: np.ndarray) -> np.ndarray:
        """Availability of the input parity of every (node, class) pair.

        Virtual zero parities (strand starts) are always available.
        """
        alpha = self._params.alpha
        result = np.ones((self._n, alpha), dtype=bool)
        for c in range(alpha):
            creators = self.input_creator[:, c]
            has_input = creators >= 1
            idx = np.clip(creators - 1, 0, self._n - 1)
            result[:, c] = np.where(has_input, parity_available[idx, c], True)
        return result

    def run_repair(
        self,
        failed_locations: np.ndarray,
        repair_parities: bool = True,
        max_rounds: int = 200,
    ) -> LatticeRepairOutcome:
        """Round-based repair until a fixpoint (or ``max_rounds``).

        ``repair_parities=False`` models minimal maintenance: parities are not
        rebuilt, only data blocks are (Fig. 12).
        """
        data_available, parity_available = self.availability_after(failed_locations)
        initially_missing_data = int((~data_available).sum())
        initially_missing_parities = int((~parity_available).sum())
        repaired_per_round: List[int] = []
        data_repaired_first_round = 0
        repaired_data_total = 0
        repaired_parity_total = 0
        alpha = self._params.alpha

        for round_number in range(1, max_rounds + 1):
            input_avail = self._input_parity_available(parity_available)
            # Data block repair: some strand has both adjacent parities.
            data_repairable = (~data_available) & np.any(
                input_avail & parity_available, axis=1
            )
            # Parity repair (two dp-tuples).
            if repair_parities:
                left_ok = data_available[:, None] & input_avail
                successor = self.output_node  # (n, alpha)
                successor_exists = successor <= self._n
                succ_idx = np.clip(successor - 1, 0, self._n - 1)
                right_data = data_available[succ_idx]
                right_parity = parity_available[succ_idx, np.arange(alpha)[None, :]]
                right_ok = successor_exists & right_data & right_parity
                parity_repairable = (~parity_available) & (left_ok | right_ok)
            else:
                parity_repairable = np.zeros_like(parity_available)

            repaired_now = int(data_repairable.sum()) + int(parity_repairable.sum())
            if repaired_now == 0:
                break
            if round_number == 1:
                data_repaired_first_round = int(data_repairable.sum())
            repaired_data_total += int(data_repairable.sum())
            repaired_parity_total += int(parity_repairable.sum())
            repaired_per_round.append(repaired_now)
            data_available = data_available | data_repairable
            parity_available = parity_available | parity_repairable

        data_loss = int((~data_available).sum())
        vulnerable = self._vulnerable_data(data_available, parity_available)
        return LatticeRepairOutcome(
            scheme=self._params.spec(),
            data_blocks=self._n,
            initially_missing_data=initially_missing_data,
            initially_missing_parities=initially_missing_parities,
            repaired_data=repaired_data_total,
            repaired_parities=repaired_parity_total,
            data_repaired_first_round=data_repaired_first_round,
            rounds=len(repaired_per_round),
            repaired_per_round=repaired_per_round,
            data_loss=data_loss,
            vulnerable_data=vulnerable,
        )

    def _vulnerable_data(
        self, data_available: np.ndarray, parity_available: np.ndarray
    ) -> int:
        """Data blocks present but no longer protected by any complete pp-tuple."""
        input_avail = self._input_parity_available(parity_available)
        protected = np.any(input_avail & parity_available, axis=1)
        return int((data_available & ~protected).sum())
