"""Scheme-agnostic discrete-event disaster & churn simulation (paper, Sec. V-C).

The subpackage tracks *availability only* -- exactly like the paper's
table-driven simulation -- which lets the experiments run at the paper's
scale (one million data blocks, 100 locations) in seconds.  The engine
(:mod:`repro.simulation.engine`) simulates any scheme the
:mod:`repro.schemes` registry resolves; the legacy per-scheme models
(``AELatticeModel``, ``RSStripeModel``, ``ReplicationModel``) remain
importable as thin shims over it.
"""

from repro.simulation.churn import (
    ChurnConfig,
    ChurnResult,
    ChurnSample,
    ChurnSimulator,
    availability_nines,
    compare_schemes_under_churn,
)
from repro.simulation.engine import (
    EngineOutcome,
    EngineRun,
    LatticeSimulation,
    SimulatedPlacement,
    SimulationEngine,
    SimulationEvent,
    StepMetrics,
    StripeDisasterState,
    StripeSimulation,
    build_simulation,
    normalise_events,
    sample_disaster_locations,
    simulate_disasters,
    vectorised_input_indices,
    vectorised_output_indices,
)
from repro.simulation.traces import (
    LifetimeModel,
    NodeSession,
    SessionTrace,
    TraceStatistics,
    datacenter_disk_trace,
    exponential_lifetimes,
    p2p_session_trace,
    weibull_lifetimes,
)
from repro.simulation.experiments import (
    AE_SETTINGS,
    DISASTER_FRACTIONS,
    ExperimentConfig,
    FIG13_SCHEMES,
    REPLICATION_FACTORS,
    RS_SETTINGS,
    build_ae_models,
    build_replication_models,
    build_rs_models,
    costs_table,
    data_loss_experiment,
    placement_balance_report,
    repair_rounds_experiment,
    run_all,
    sample_disaster,
    single_failure_experiment,
    vulnerable_data_experiment,
)
from repro.simulation.lattice_model import AELatticeModel, LatticeRepairOutcome
from repro.simulation.metrics import (
    DisasterMetrics,
    PAPER_SCHEMES,
    SchemeDescription,
    describe_scheme,
    format_table,
    scheme_costs,
    scheme_id_for,
)
from repro.simulation.replication_model import ReplicationModel, ReplicationOutcome
from repro.simulation.rs_model import RSStripeModel, StripeRepairOutcome
from repro.simulation.workload import (
    WorkloadSpec,
    document_bytes,
    mixed_file_sizes,
    payload_stream,
)

__all__ = [
    "AELatticeModel",
    "AE_SETTINGS",
    "ChurnConfig",
    "ChurnResult",
    "ChurnSample",
    "ChurnSimulator",
    "DISASTER_FRACTIONS",
    "DisasterMetrics",
    "EngineOutcome",
    "EngineRun",
    "ExperimentConfig",
    "FIG13_SCHEMES",
    "LatticeRepairOutcome",
    "LatticeSimulation",
    "LifetimeModel",
    "NodeSession",
    "PAPER_SCHEMES",
    "REPLICATION_FACTORS",
    "RSStripeModel",
    "RS_SETTINGS",
    "ReplicationModel",
    "ReplicationOutcome",
    "SchemeDescription",
    "SessionTrace",
    "SimulatedPlacement",
    "SimulationEngine",
    "SimulationEvent",
    "StepMetrics",
    "StripeDisasterState",
    "StripeRepairOutcome",
    "StripeSimulation",
    "TraceStatistics",
    "WorkloadSpec",
    "availability_nines",
    "build_ae_models",
    "build_replication_models",
    "build_rs_models",
    "build_simulation",
    "compare_schemes_under_churn",
    "costs_table",
    "data_loss_experiment",
    "datacenter_disk_trace",
    "describe_scheme",
    "document_bytes",
    "exponential_lifetimes",
    "format_table",
    "mixed_file_sizes",
    "normalise_events",
    "p2p_session_trace",
    "payload_stream",
    "placement_balance_report",
    "repair_rounds_experiment",
    "run_all",
    "sample_disaster",
    "sample_disaster_locations",
    "scheme_costs",
    "scheme_id_for",
    "simulate_disasters",
    "single_failure_experiment",
    "vectorised_input_indices",
    "vectorised_output_indices",
    "vulnerable_data_experiment",
    "weibull_lifetimes",
]
