"""Vectorised disaster-recovery simulator and experiment runner (paper, Sec. V-C).

The models in this subpackage track *availability only* -- exactly like the
paper's table-driven simulation -- which lets the experiments run at the
paper's scale (one million data blocks, 100 locations) in seconds.
"""

from repro.simulation.churn import (
    ChurnConfig,
    ChurnResult,
    ChurnSample,
    ChurnSimulator,
    availability_nines,
    compare_schemes_under_churn,
)
from repro.simulation.traces import (
    LifetimeModel,
    NodeSession,
    SessionTrace,
    TraceStatistics,
    datacenter_disk_trace,
    exponential_lifetimes,
    p2p_session_trace,
    weibull_lifetimes,
)
from repro.simulation.experiments import (
    AE_SETTINGS,
    DISASTER_FRACTIONS,
    ExperimentConfig,
    FIG13_SCHEMES,
    REPLICATION_FACTORS,
    RS_SETTINGS,
    costs_table,
    data_loss_experiment,
    placement_balance_report,
    repair_rounds_experiment,
    run_all,
    sample_disaster,
    single_failure_experiment,
    vulnerable_data_experiment,
)
from repro.simulation.lattice_model import (
    AELatticeModel,
    LatticeRepairOutcome,
    vectorised_input_indices,
    vectorised_output_indices,
)
from repro.simulation.metrics import (
    DisasterMetrics,
    PAPER_SCHEMES,
    SchemeDescription,
    describe_scheme,
    format_table,
    scheme_costs,
)
from repro.simulation.replication_model import ReplicationModel, ReplicationOutcome
from repro.simulation.rs_model import RSStripeModel, StripeRepairOutcome
from repro.simulation.workload import (
    WorkloadSpec,
    document_bytes,
    mixed_file_sizes,
    payload_stream,
)

__all__ = [
    "AELatticeModel",
    "ChurnConfig",
    "ChurnResult",
    "ChurnSample",
    "ChurnSimulator",
    "LifetimeModel",
    "NodeSession",
    "SessionTrace",
    "TraceStatistics",
    "AE_SETTINGS",
    "DISASTER_FRACTIONS",
    "DisasterMetrics",
    "ExperimentConfig",
    "FIG13_SCHEMES",
    "LatticeRepairOutcome",
    "PAPER_SCHEMES",
    "REPLICATION_FACTORS",
    "RS_SETTINGS",
    "ReplicationModel",
    "ReplicationOutcome",
    "RSStripeModel",
    "SchemeDescription",
    "StripeRepairOutcome",
    "WorkloadSpec",
    "availability_nines",
    "compare_schemes_under_churn",
    "costs_table",
    "datacenter_disk_trace",
    "exponential_lifetimes",
    "data_loss_experiment",
    "describe_scheme",
    "document_bytes",
    "format_table",
    "mixed_file_sizes",
    "p2p_session_trace",
    "payload_stream",
    "placement_balance_report",
    "repair_rounds_experiment",
    "run_all",
    "sample_disaster",
    "scheme_costs",
    "single_failure_experiment",
    "vectorised_input_indices",
    "vectorised_output_indices",
    "vulnerable_data_experiment",
    "weibull_lifetimes",
]
