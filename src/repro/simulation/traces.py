"""Synthetic failure and availability traces for unreliable environments.

The paper motivates AE codes with two kinds of unreliable environments
(Section V-C): peer-to-peer networks "where nodes join and leave frequently"
and data centres whose disks fail far more often than their datasheet MTTF
suggests.  Neither the authors' p2p traces nor production disk logs are
available, so this module generates the closest synthetic equivalents:

* **device lifetime samples** -- exponential and Weibull lifetimes (Schroeder &
  Gibson's FAST'07 study, cited by the paper, shows real disk replacement
  data is far better described by a Weibull with decreasing hazard rate than
  by the exponential assumption);
* **p2p session traces** -- per-node alternating online/offline sessions with
  exponential or heavy-tailed (Pareto) durations, the standard model for
  peer availability;
* conversion to the discrete :class:`repro.storage.failures.ChurnTrace`
  consumed by the cluster substrate and by the churn simulator.

Every generator takes an explicit seed, so traces are reproducible and the
benchmarks regenerate the same series on every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import InvalidParametersError
from repro.storage.failures import ChurnEvent, ChurnTrace

__all__ = [
    "LifetimeModel",
    "exponential_lifetimes",
    "weibull_lifetimes",
    "NodeSession",
    "SessionTrace",
    "p2p_session_trace",
    "datacenter_disk_trace",
    "TraceStatistics",
]


# ----------------------------------------------------------------------
# Device lifetimes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LifetimeModel:
    """Parametric lifetime distribution of a storage device."""

    distribution: str  # "exponential" or "weibull"
    mttf_hours: float
    weibull_shape: float = 1.0

    def __post_init__(self) -> None:
        if self.distribution not in ("exponential", "weibull"):
            raise InvalidParametersError(
                f"unknown lifetime distribution {self.distribution!r}"
            )
        if self.mttf_hours <= 0:
            raise InvalidParametersError("mttf_hours must be positive")
        if self.weibull_shape <= 0:
            raise InvalidParametersError("weibull_shape must be positive")

    def sample(self, count: int, seed: int = 0) -> np.ndarray:
        """Draw ``count`` lifetimes (hours) with the configured distribution."""
        if count < 1:
            raise InvalidParametersError("count must be positive")
        rng = np.random.default_rng(seed)
        if self.distribution == "exponential":
            return rng.exponential(self.mttf_hours, size=count)
        # Weibull with the requested mean: scale = mean / Gamma(1 + 1/shape).
        from math import gamma

        scale = self.mttf_hours / gamma(1.0 + 1.0 / self.weibull_shape)
        return scale * rng.weibull(self.weibull_shape, size=count)


def exponential_lifetimes(count: int, mttf_hours: float, seed: int = 0) -> np.ndarray:
    """Exponential device lifetimes (the textbook constant-hazard model)."""
    return LifetimeModel("exponential", mttf_hours).sample(count, seed)


def weibull_lifetimes(
    count: int, mttf_hours: float, shape: float = 0.7, seed: int = 0
) -> np.ndarray:
    """Weibull device lifetimes with mean ``mttf_hours``.

    ``shape < 1`` gives the decreasing hazard rate (infant mortality followed
    by long stable operation) observed in the field data the paper cites.
    """
    return LifetimeModel("weibull", mttf_hours, weibull_shape=shape).sample(count, seed)


# ----------------------------------------------------------------------
# Session traces
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NodeSession:
    """One contiguous online interval of a node, ``[start, end)`` in hours."""

    node: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise InvalidParametersError("a session cannot end before it starts")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class SessionTrace:
    """Continuous-time availability trace: online sessions per node."""

    node_count: int
    horizon_hours: float
    sessions: List[NodeSession] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.node_count < 1:
            raise InvalidParametersError("node_count must be positive")
        if self.horizon_hours <= 0:
            raise InvalidParametersError("horizon_hours must be positive")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def sessions_of(self, node: int) -> List[NodeSession]:
        return [session for session in self.sessions if session.node == node]

    def online_at(self, time: float) -> List[int]:
        """Nodes online at ``time`` (hours)."""
        return sorted(
            {
                session.node
                for session in self.sessions
                if session.start <= time < session.end
            }
        )

    def availability(self, node: int) -> float:
        """Fraction of the horizon that ``node`` spent online."""
        online = sum(
            min(session.end, self.horizon_hours) - min(session.start, self.horizon_hours)
            for session in self.sessions_of(node)
        )
        return min(online / self.horizon_hours, 1.0)

    def mean_availability(self) -> float:
        """Average per-node availability over the horizon."""
        return float(
            np.mean([self.availability(node) for node in range(self.node_count)])
        )

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def to_churn_trace(self, step_hours: float = 1.0) -> ChurnTrace:
        """Discretise into :class:`ChurnTrace` events of ``step_hours`` steps.

        A node counts as online in a step when it is online at the step's
        start; departures/arrivals are emitted whenever the state changes
        between consecutive steps.
        """
        if step_hours <= 0:
            raise InvalidParametersError("step_hours must be positive")
        steps = int(np.ceil(self.horizon_hours / step_hours))
        previous_online = set(range(self.node_count))
        events: List[ChurnEvent] = []
        for step in range(steps):
            time = step * step_hours
            online = set(self.online_at(time))
            departures = tuple(sorted(previous_online - online))
            arrivals = tuple(sorted(online - previous_online))
            events.append(ChurnEvent(time=step, departures=departures, arrivals=arrivals))
            previous_online = online
        return ChurnTrace(events=events)

    def offline_mask_at(self, time: float) -> np.ndarray:
        """Boolean mask (per node) of who is *offline* at ``time``."""
        mask = np.ones(self.node_count, dtype=bool)
        mask[self.online_at(time)] = False
        return mask


def p2p_session_trace(
    node_count: int,
    horizon_hours: float,
    mean_session_hours: float = 8.0,
    mean_downtime_hours: float = 16.0,
    distribution: str = "exponential",
    pareto_shape: float = 1.5,
    permanent_departure_probability: float = 0.0,
    seed: int = 0,
) -> SessionTrace:
    """Generate a peer-to-peer availability trace.

    Each node alternates online sessions and offline periods whose durations
    are drawn from an exponential or Pareto (heavy-tailed) distribution; with
    ``permanent_departure_probability`` a node that goes offline never comes
    back, modelling real departures (the case erasure codes struggle with the
    most because redundancy must be re-created elsewhere).
    """
    if node_count < 1:
        raise InvalidParametersError("node_count must be positive")
    if horizon_hours <= 0:
        raise InvalidParametersError("horizon_hours must be positive")
    if mean_session_hours <= 0 or mean_downtime_hours <= 0:
        raise InvalidParametersError("session and downtime means must be positive")
    if distribution not in ("exponential", "pareto"):
        raise InvalidParametersError(f"unknown session distribution {distribution!r}")
    if not 0.0 <= permanent_departure_probability <= 1.0:
        raise InvalidParametersError("permanent_departure_probability must lie in [0, 1]")
    rng = np.random.default_rng(seed)

    def draw(mean: float) -> float:
        if distribution == "exponential":
            return float(rng.exponential(mean))
        # Pareto with the requested mean (shape > 1 so that the mean exists):
        # mean = shape * minimum / (shape - 1).
        minimum = mean * (pareto_shape - 1.0) / pareto_shape
        return float(minimum * (1.0 + rng.pareto(pareto_shape)))

    sessions: List[NodeSession] = []
    for node in range(node_count):
        time = 0.0
        online = True  # every node starts online with its blocks in place
        while time < horizon_hours:
            if online:
                duration = draw(mean_session_hours)
                end = min(time + duration, horizon_hours)
                sessions.append(NodeSession(node=node, start=time, end=end))
                time = end
                online = False
                if rng.random() < permanent_departure_probability:
                    break  # the node never returns
            else:
                time += draw(mean_downtime_hours)
                online = True
    return SessionTrace(node_count=node_count, horizon_hours=horizon_hours, sessions=sessions)


def datacenter_disk_trace(
    node_count: int,
    horizon_hours: float,
    mttf_hours: float = 50_000.0,
    repair_hours: float = 72.0,
    weibull_shape: Optional[float] = 0.7,
    seed: int = 0,
) -> SessionTrace:
    """Disk-fleet availability trace: long lifetimes, slow replacements.

    Lifetimes follow a Weibull (or exponential when ``weibull_shape`` is
    ``None``); a failed disk returns after an exponential replacement time,
    modelling the rebuild window during which its blocks are unavailable.
    """
    if repair_hours <= 0:
        raise InvalidParametersError("repair_hours must be positive")
    rng = np.random.default_rng(seed)
    model = (
        LifetimeModel("exponential", mttf_hours)
        if weibull_shape is None
        else LifetimeModel("weibull", mttf_hours, weibull_shape=weibull_shape)
    )
    sessions: List[NodeSession] = []
    for node in range(node_count):
        time = 0.0
        while time < horizon_hours:
            lifetime = float(model.sample(1, seed=int(rng.integers(0, 2**31 - 1)))[0])
            end = min(time + lifetime, horizon_hours)
            sessions.append(NodeSession(node=node, start=time, end=end))
            time = end + float(rng.exponential(repair_hours))
    return SessionTrace(node_count=node_count, horizon_hours=horizon_hours, sessions=sessions)


# ----------------------------------------------------------------------
# Trace statistics
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceStatistics:
    """Summary statistics of a session trace."""

    node_count: int
    horizon_hours: float
    mean_availability: float
    min_availability: float
    mean_session_hours: float
    sessions_per_node: float
    offline_at_end: int

    def as_row(self) -> Dict[str, object]:
        return {
            "nodes": self.node_count,
            "horizon (h)": round(self.horizon_hours, 1),
            "mean availability": round(self.mean_availability, 4),
            "min availability": round(self.min_availability, 4),
            "mean session (h)": round(self.mean_session_hours, 2),
            "sessions / node": round(self.sessions_per_node, 2),
            "offline at end": self.offline_at_end,
        }

    @classmethod
    def of(cls, trace: SessionTrace) -> "TraceStatistics":
        availabilities = [trace.availability(node) for node in range(trace.node_count)]
        durations = [session.duration for session in trace.sessions]
        online_at_end = set(trace.online_at(trace.horizon_hours - 1e-9))
        return cls(
            node_count=trace.node_count,
            horizon_hours=trace.horizon_hours,
            mean_availability=float(np.mean(availabilities)) if availabilities else 0.0,
            min_availability=float(np.min(availabilities)) if availabilities else 0.0,
            mean_session_hours=float(np.mean(durations)) if durations else 0.0,
            sessions_per_node=len(trace.sessions) / trace.node_count,
            offline_at_end=trace.node_count - len(online_at_end),
        )
