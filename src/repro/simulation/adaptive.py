"""Adaptive maintenance: deciding *when* to change the redundancy scheme.

The dynamic-redundancy subsystem (:mod:`repro.system.transitions`) can
migrate a live service between schemes -- raise alpha in place, puncture or
restore parities, or re-encode across families.  This module supplies the
control loop that decides when such a transition is worth running.

An :class:`AdaptiveMaintenancePolicy` watches a sliding window of health
samples -- served availability, the vulnerable-data fraction and a read-rate
"temperature" -- and recommends one of three actions:

* **hot-data promotion** (``strengthen``): reads run hot, availability dips
  or too much data sits vulnerable, so climb the redundancy ladder -- restore
  a punctured lattice to its plain setting, raise alpha (up to the lattice's
  alpha=3 ceiling), or re-encode a non-AE scheme into the default lattice;
* **cold-archive demotion** (``weaken``): the window shows nothing but
  healthy, cold data, so puncture the lattice and reclaim parity storage
  (the code-collapsing direction of the paper's Sec. VII discussion);
* **hold**: neither signal is decisive, or a transition just ran and the
  cooldown keeps the controller from flapping.

:func:`run_adaptive` replays an event timeline (churn, disasters) against
the availability engine, feeds the per-step health into the policy and
applies each recommendation by rebuilding the placement under the new
scheme id -- the simulation counterpart of
:meth:`repro.system.service.StorageService.transition_to`.  The
:func:`cold_archive_demotion` and :func:`hot_data_promotion` scenarios wire
both directions end to end with fixed seeds and fixed read schedules, so
every run is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import InvalidParametersError
from repro.simulation.engine import (
    EventSource,
    SimulationEvent,
    build_simulation,
    normalise_events,
)
from repro.storage.maintenance import MaintenanceBudget, MaintenancePolicy

__all__ = [
    "ACTION_HOLD",
    "ACTION_STRENGTHEN",
    "ACTION_WEAKEN",
    "AdaptiveDecision",
    "AdaptiveMaintenancePolicy",
    "AdaptiveRun",
    "AdaptiveSample",
    "AdaptiveStep",
    "cold_archive_demotion",
    "hot_data_promotion",
    "run_adaptive",
]

#: The three recommendations a policy can emit.
ACTION_HOLD = "hold"
ACTION_STRENGTHEN = "strengthen"
ACTION_WEAKEN = "weaken"

#: Default scheme a non-AE deployment is promoted into (the paper's
#: recommended setting).
DEFAULT_PROMOTION_TARGET = "ae-3-2-5"


@dataclass(frozen=True)
class AdaptiveSample:
    """One observation of the deployment's health.

    ``availability`` is the fraction of data blocks the scheme can still
    serve (degraded reads included), ``vulnerable_fraction`` the share of
    data blocks left without a complete repair tuple, and ``read_rate`` the
    workload temperature in reads per data block per step.
    """

    time: float
    availability: float
    vulnerable_fraction: float
    read_rate: float


@dataclass(frozen=True)
class AdaptiveDecision:
    """One recommendation: what to do, to which scheme, and why."""

    time: float
    action: str
    scheme_id: str
    target_id: Optional[str]
    reason: str


class AdaptiveMaintenancePolicy:
    """Sliding-window controller recommending live scheme transitions.

    The policy is observation-driven and scheme-aware: it knows the
    redundancy ladder (punctured lattice < plain lattice < higher alpha,
    topping out at alpha=3) and never recommends a transition the
    :mod:`repro.system.transitions` engine would reject.

    ``observe`` returns a decision for every sample; a non-``hold`` decision
    advances the policy's own notion of the current scheme (the caller is
    expected to apply it, e.g. via ``StorageService.transition_to``) and
    starts a ``cooldown`` of held samples so back-to-back migrations cannot
    flap.
    """

    def __init__(
        self,
        scheme_id: str,
        *,
        window: int = 4,
        cooldown: Optional[int] = None,
        availability_floor: float = 0.999,
        vulnerable_ceiling: float = 0.01,
        hot_read_rate: float = 1.0,
        cold_read_rate: float = 0.1,
        demote_keep_percent: int = 75,
        promotion_target: str = DEFAULT_PROMOTION_TARGET,
        block_size: int = 4096,
    ) -> None:
        if window < 1:
            raise InvalidParametersError("window must be at least 1 sample")
        if not 0 < demote_keep_percent < 100:
            raise InvalidParametersError(
                "demote_keep_percent must lie strictly between 0 and 100"
            )
        if cold_read_rate >= hot_read_rate:
            raise InvalidParametersError(
                "cold_read_rate must be below hot_read_rate"
            )
        self._block_size = block_size
        self._scheme_id = self._validate(scheme_id)
        self._window_size = window
        self._cooldown_steps = window if cooldown is None else cooldown
        self._availability_floor = availability_floor
        self._vulnerable_ceiling = vulnerable_ceiling
        self._hot_read_rate = hot_read_rate
        self._cold_read_rate = cold_read_rate
        self._demote_keep_percent = demote_keep_percent
        self._promotion_target = self._validate(promotion_target)
        self._window: List[AdaptiveSample] = []
        self._cooldown_left = 0
        self._decisions: List[AdaptiveDecision] = []

    def _validate(self, scheme_id: str) -> str:
        import repro.schemes as schemes

        return schemes.get(scheme_id, block_size=self._block_size).scheme_id

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def scheme_id(self) -> str:
        """The scheme the policy currently assumes is deployed."""
        return self._scheme_id

    @property
    def decisions(self) -> List[AdaptiveDecision]:
        """Every non-``hold`` decision issued so far."""
        return list(self._decisions)

    # ------------------------------------------------------------------
    # The redundancy ladder
    # ------------------------------------------------------------------
    def _resolve(self, scheme_id: str):
        import repro.schemes as schemes

        return schemes.get(scheme_id, block_size=self._block_size)

    def strengthen_target(self) -> Optional[str]:
        """Next rung up, or ``None`` when already at the strongest setting."""
        from repro.codes.entanglement import (
            EntanglementScheme,
            PuncturedEntanglementScheme,
            ae_scheme_id,
        )
        from repro.core.parameters import AEParameters

        current = self._resolve(self._scheme_id)
        if isinstance(current, PuncturedEntanglementScheme):
            return ae_scheme_id(current.params)
        if isinstance(current, EntanglementScheme):
            params = current.params
            if params.alpha >= 3:
                return None  # the helical lattice tops out at alpha=3
            return ae_scheme_id(AEParameters(params.alpha + 1, params.s, params.p))
        if self._promotion_target != self._scheme_id:
            return self._promotion_target
        return None

    def weaken_target(self) -> Optional[str]:
        """Next rung down, or ``None`` when there is nothing left to shed."""
        from repro.codes.entanglement import (
            EntanglementScheme,
            PuncturedEntanglementScheme,
            punctured_scheme_id,
        )

        current = self._resolve(self._scheme_id)
        if isinstance(current, PuncturedEntanglementScheme):
            return None  # already punctured; do not erode protection further
        if isinstance(current, EntanglementScheme):
            return punctured_scheme_id(
                current.params, self._demote_keep_percent / 100.0
            )
        return None  # demotion is an AE-lattice feature (puncturing)

    # ------------------------------------------------------------------
    # The control loop
    # ------------------------------------------------------------------
    def observe(self, sample: AdaptiveSample) -> AdaptiveDecision:
        """Fold one health sample in and return the recommendation."""
        self._window.append(sample)
        if len(self._window) > self._window_size:
            self._window.pop(0)

        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            return self._hold(sample, "cooling down after a transition")
        if len(self._window) < self._window_size:
            return self._hold(sample, "warming up the observation window")

        min_availability = min(s.availability for s in self._window)
        mean_vulnerable = sum(s.vulnerable_fraction for s in self._window) / len(
            self._window
        )
        mean_read_rate = sum(s.read_rate for s in self._window) / len(self._window)

        unhealthy = (
            min_availability < self._availability_floor
            or mean_vulnerable > self._vulnerable_ceiling
        )
        if unhealthy or mean_read_rate >= self._hot_read_rate:
            target = self.strengthen_target()
            if target is None:
                return self._hold(sample, "already at the strongest setting")
            reason = (
                f"availability {min_availability:.6f} below floor"
                if min_availability < self._availability_floor
                else f"vulnerable fraction {mean_vulnerable:.6f} above ceiling"
                if mean_vulnerable > self._vulnerable_ceiling
                else f"read rate {mean_read_rate:.3f} is hot"
            )
            return self._transition(sample, ACTION_STRENGTHEN, target, reason)

        if mean_read_rate <= self._cold_read_rate:
            target = self.weaken_target()
            if target is None:
                return self._hold(sample, "cold, but nothing left to shed")
            return self._transition(
                sample,
                ACTION_WEAKEN,
                target,
                f"read rate {mean_read_rate:.3f} is cold and the window is healthy",
            )

        return self._hold(sample, "within the hold band")

    def _hold(self, sample: AdaptiveSample, reason: str) -> AdaptiveDecision:
        return AdaptiveDecision(
            time=sample.time,
            action=ACTION_HOLD,
            scheme_id=self._scheme_id,
            target_id=None,
            reason=reason,
        )

    def _transition(
        self, sample: AdaptiveSample, action: str, target: str, reason: str
    ) -> AdaptiveDecision:
        decision = AdaptiveDecision(
            time=sample.time,
            action=action,
            scheme_id=self._scheme_id,
            target_id=target,
            reason=reason,
        )
        self._decisions.append(decision)
        self._scheme_id = target
        self._window.clear()
        self._cooldown_left = self._cooldown_steps
        return decision


# ----------------------------------------------------------------------
# Driving the policy against the availability engine
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AdaptiveStep:
    """State of the adaptive run after one timeline event."""

    time: float
    scheme_id: str
    availability: float
    vulnerable_fraction: float
    read_rate: float
    stored_blocks: int
    action: str


@dataclass
class AdaptiveRun:
    """Full result of :func:`run_adaptive`."""

    initial_scheme: str
    final_scheme: str
    data_blocks: int
    steps: List[AdaptiveStep] = field(default_factory=list)
    decisions: List[AdaptiveDecision] = field(default_factory=list)

    @property
    def mean_availability(self) -> float:
        if not self.steps:
            return 1.0
        return float(np.mean([step.availability for step in self.steps]))

    @property
    def min_availability(self) -> float:
        if not self.steps:
            return 1.0
        return float(np.min([step.availability for step in self.steps]))

    @property
    def stored_blocks_saved(self) -> int:
        """Stored-block delta between the first and last step (demotion win)."""
        if not self.steps:
            return 0
        return self.steps[0].stored_blocks - self.steps[-1].stored_blocks

    def as_row(self) -> dict:
        return {
            "initial scheme": self.initial_scheme,
            "final scheme": self.final_scheme,
            "events": len(self.steps),
            "transitions": len(self.decisions),
            "mean availability": round(self.mean_availability, 6),
            "min availability": round(self.min_availability, 6),
            "stored blocks saved": self.stored_blocks_saved,
        }


def run_adaptive(
    policy: AdaptiveMaintenancePolicy,
    events: EventSource,
    read_rates: Sequence[float],
    *,
    data_blocks: int = 2000,
    location_count: int = 50,
    seed: int = 0,
    maintenance: MaintenancePolicy = MaintenancePolicy.FULL,
    budget: Optional[MaintenanceBudget] = None,
    block_size: int = 4096,
) -> AdaptiveRun:
    """Replay a timeline, let the policy steer the scheme, record everything.

    Each event updates the offline-location set; the engine then *evaluates*
    (without persisting) what the current scheme could repair, exactly like
    :meth:`~repro.simulation.engine.SimulationEngine.run_events`.  The
    resulting availability and vulnerable fraction, together with the
    aligned ``read_rates`` entry, form the policy's health sample.  A
    non-``hold`` decision rebuilds the placement under the recommended
    scheme id with the same block population, seed and location count --
    the availability-study analogue of a live, zero-downtime transition.
    """
    timeline = normalise_events(events)
    if len(read_rates) != len(timeline):
        raise InvalidParametersError(
            f"read_rates has {len(read_rates)} entries for {len(timeline)} events; "
            "provide one read-rate sample per timeline event"
        )
    placement = build_simulation(
        policy.scheme_id, data_blocks, location_count, seed, block_size
    )
    limit = placement.location_count
    run = AdaptiveRun(
        initial_scheme=policy.scheme_id,
        final_scheme=policy.scheme_id,
        data_blocks=placement.data_blocks,
    )
    offline: set = set()
    for event, read_rate in zip(timeline, read_rates):
        for location in event.restore:
            offline.discard(location)
        for location in event.fail:
            if not 0 <= location < limit:
                raise InvalidParametersError(
                    f"event location {location} lies outside 0..{limit - 1}"
                )
            offline.add(location)
        if offline:
            outcome = placement.run_repair(
                np.asarray(sorted(offline), dtype=np.int64),
                policy=maintenance,
                budget=budget,
            )
            availability = 1.0 - outcome.data_loss / placement.data_blocks
            vulnerable = outcome.vulnerable_data / placement.data_blocks
        else:
            availability = 1.0
            vulnerable = 0.0
        sample = AdaptiveSample(
            time=event.time,
            availability=availability,
            vulnerable_fraction=vulnerable,
            read_rate=float(read_rate),
        )
        decision = policy.observe(sample)
        run.steps.append(
            AdaptiveStep(
                time=event.time,
                scheme_id=decision.scheme_id,
                availability=availability,
                vulnerable_fraction=vulnerable,
                read_rate=float(read_rate),
                stored_blocks=placement.total_blocks,
                action=decision.action,
            )
        )
        if decision.action != ACTION_HOLD:
            run.decisions.append(decision)
            placement = build_simulation(
                policy.scheme_id, data_blocks, location_count, seed, block_size
            )
    run.final_scheme = policy.scheme_id
    return run


# ----------------------------------------------------------------------
# Canonical scenarios
# ----------------------------------------------------------------------
def _churn_timeline(
    steps: int, location_count: int, churn_every: int = 3
) -> List[SimulationEvent]:
    """A gentle, fully deterministic churn pattern: one location bounces."""
    events: List[SimulationEvent] = []
    bouncing = 0
    down = False
    for step in range(steps):
        fail: tuple = ()
        restore: tuple = ()
        if step % churn_every == churn_every - 1:
            if down:
                restore = (bouncing,)
                bouncing = (bouncing + 1) % location_count
            else:
                fail = (bouncing,)
            down = not down
        events.append(
            SimulationEvent(time=float(step), fail=fail, restore=restore, label="churn")
        )
    return events


def cold_archive_demotion(
    *,
    data_blocks: int = 1500,
    location_count: int = 40,
    seed: int = 11,
    window: int = 3,
) -> AdaptiveRun:
    """Hot data cools into an archive: the plain lattice is punctured.

    Starts on the paper's recommended ``ae-3-2-5`` with a hot read schedule
    that decays to near zero.  Once the window is both cold and healthy the
    policy demotes to ``ae-3-2-5-p75``, shedding a quarter of the parities.
    """
    policy = AdaptiveMaintenancePolicy(
        "ae-3-2-5",
        window=window,
        cooldown=window,
        hot_read_rate=1.0,
        cold_read_rate=0.1,
    )
    steps = 4 * window + 2
    events = _churn_timeline(steps, location_count)
    hot_steps = 2 * window
    read_rates = [2.0] * hot_steps + [0.02] * (steps - hot_steps)
    return run_adaptive(
        policy,
        events,
        read_rates,
        data_blocks=data_blocks,
        location_count=location_count,
        seed=seed,
    )


def hot_data_promotion(
    *,
    data_blocks: int = 1500,
    location_count: int = 40,
    seed: int = 11,
    window: int = 3,
) -> AdaptiveRun:
    """An archive turns hot again: the punctured lattice is restored.

    Starts on ``ae-3-2-5-p75`` with a cold read schedule that ramps up past
    the hot threshold; the policy promotes back to the plain ``ae-3-2-5``
    and then holds (the lattice already sits at the alpha=3 ceiling).
    """
    policy = AdaptiveMaintenancePolicy(
        "ae-3-2-5-p75",
        window=window,
        cooldown=window,
        hot_read_rate=1.0,
        cold_read_rate=0.1,
    )
    steps = 4 * window + 2
    events = _churn_timeline(steps, location_count)
    cold_steps = 2 * window
    read_rates = [0.02] * cold_steps + [3.0] * (steps - cold_steps)
    return run_adaptive(
        policy,
        events,
        read_rates,
        data_blocks=data_blocks,
        location_count=location_count,
        seed=seed,
    )
