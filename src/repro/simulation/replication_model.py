"""Vectorised availability model of n-way replication (legacy shim).

.. deprecated::
    This module is kept for backwards compatibility.  Replication is now
    simulated by :class:`repro.simulation.engine.StripeSimulation` driving a
    :class:`~repro.codes.replication.ReplicationCode` (a ``(1, n-1)`` stripe
    code); :class:`ReplicationModel` is a thin shim over it that preserves
    the historical constructor and the ``run_repair(failed)`` ->
    :class:`ReplicationOutcome` surface.  New code should use
    :class:`~repro.simulation.engine.SimulationEngine` with a ``rep-n``
    registry identifier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codes.replication import ReplicationCode
from repro.exceptions import InvalidParametersError
from repro.simulation.engine import StripeSimulation

__all__ = ["ReplicationModel", "ReplicationOutcome"]


@dataclass
class ReplicationOutcome:
    """Per-disaster metrics of an n-way replicated block population."""

    scheme: str
    data_blocks: int
    copies: int
    initially_missing_copies: int
    data_loss: int
    vulnerable_data: int
    repaired_copies: int

    @property
    def single_failure_fraction(self) -> float:
        """Every replication repair copies a single block, so the fraction is 1."""
        return 1.0 if self.repaired_copies else 0.0


class ReplicationModel(StripeSimulation):
    """Availability-only model of ``copies``-way replication (legacy shim).

    .. deprecated::
        Thin shim over :class:`~repro.simulation.engine.StripeSimulation`;
        kept so historical call sites (and their fixed-seed results) remain
        intact.  Prefer the scheme-agnostic
        :class:`~repro.simulation.engine.SimulationEngine`.
    """

    def __init__(
        self,
        copies: int,
        data_blocks: int,
        location_count: int = 100,
        seed: int = 0,
    ) -> None:
        if copies < 2:
            raise InvalidParametersError("replication requires at least 2 copies")
        super().__init__(
            ReplicationCode(copies),
            data_blocks,
            location_count,
            seed,
            scheme_id=f"rep-{copies}",
        )
        self.copies = copies

    @property
    def scheme(self) -> str:
        return self.name

    @property
    def copy_location(self) -> np.ndarray:
        """Location of every copy, shape (data_blocks, copies)."""
        return self.block_location

    def run_repair(self, failed_locations: np.ndarray) -> ReplicationOutcome:
        """Apply a disaster; copies on surviving locations allow full repair."""
        state = self.evaluate(failed_locations)
        missing_copies = int(state.missing_count.sum())
        # Full repair copies each missing replica from a surviving one (blocks
        # whose every copy failed cannot be repaired at all).
        repaired = int(state.missing_count[state.decodable].sum())
        return ReplicationOutcome(
            scheme=self.name,
            data_blocks=self.data_blocks,
            copies=self.copies,
            initially_missing_copies=missing_copies,
            data_loss=int(state.data_missing_count[~state.decodable].sum()),
            vulnerable_data=int(state.vulnerable_minimal.sum()),
            repaired_copies=repaired,
        )
