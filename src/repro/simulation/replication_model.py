"""Vectorised availability model of n-way replication for large-scale simulations.

Replication is the third family of redundancy schemes in the paper's disaster
study (Figs. 11 and 12): every data block is stored as ``n`` full copies on
independently chosen locations.  A block is lost only when *all* of its copies
sit on failed locations; it is left without redundancy when exactly one copy
survives and no maintenance restores the others.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import InvalidParametersError


@dataclass
class ReplicationOutcome:
    """Per-disaster metrics of an n-way replicated block population."""

    scheme: str
    data_blocks: int
    copies: int
    initially_missing_copies: int
    data_loss: int
    vulnerable_data: int
    repaired_copies: int

    @property
    def single_failure_fraction(self) -> float:
        """Every replication repair copies a single block, so the fraction is 1."""
        return 1.0 if self.repaired_copies else 0.0


class ReplicationModel:
    """Availability-only model of ``copies``-way replication."""

    def __init__(
        self,
        copies: int,
        data_blocks: int,
        location_count: int = 100,
        seed: int = 0,
    ) -> None:
        if copies < 2:
            raise InvalidParametersError("replication requires at least 2 copies")
        if data_blocks < 1:
            raise InvalidParametersError("data_blocks must be positive")
        self.copies = copies
        self._data_blocks = data_blocks
        self._locations = location_count
        rng = np.random.default_rng(seed)
        #: Location of every copy, shape (data_blocks, copies).
        self.copy_location = rng.integers(
            0, location_count, size=(data_blocks, copies), dtype=np.int64
        )

    @property
    def scheme(self) -> str:
        return f"{self.copies}-way replication"

    @property
    def data_blocks(self) -> int:
        return self._data_blocks

    @property
    def location_count(self) -> int:
        return self._locations

    def run_repair(self, failed_locations: np.ndarray) -> ReplicationOutcome:
        """Apply a disaster; copies on surviving locations allow full repair."""
        failed_mask = np.zeros(self._locations, dtype=bool)
        failed_mask[np.asarray(failed_locations, dtype=np.int64)] = True
        copy_unavailable = failed_mask[self.copy_location]  # (blocks, copies)
        unavailable_count = copy_unavailable.sum(axis=1)
        surviving = self.copies - unavailable_count
        data_loss = int((surviving == 0).sum())
        # Minimal maintenance restores nothing beyond the primary copy, so a
        # block is vulnerable when a single copy survives.
        vulnerable = int((surviving == 1).sum())
        # Full repair copies each missing replica from a surviving one (blocks
        # whose every copy failed cannot be repaired at all).
        repaired = int(copy_unavailable[surviving > 0].sum())
        return ReplicationOutcome(
            scheme=self.scheme,
            data_blocks=self._data_blocks,
            copies=self.copies,
            initially_missing_copies=int(unavailable_count.sum()),
            data_loss=data_loss,
            vulnerable_data=vulnerable,
            repaired_copies=repaired,
        )
