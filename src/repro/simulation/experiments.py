"""Experiment runner for the disaster-recovery evaluation (Figs. 11-13, Tables IV & VI).

Each experiment follows the paper's setup:

* one million synthetically generated data blocks (configurable through
  ``scale`` so tests and quick runs stay fast);
* the corresponding encoded blocks for every redundancy scheme;
* blocks distributed over ``n = 100`` storage locations with random placement;
* disasters that take 10% to 50% of the locations offline at once;
* the repair process then rebuilds what it can, and the metrics are collected.

Every experiment routes through the scheme-agnostic
:class:`~repro.simulation.engine.SimulationEngine`, so the scheme lists below
are plain registry identifiers -- add ``"lrc-azure"`` or ``"xor-geo"`` to a
list (or call :func:`repro.simulation.engine.simulate_disasters` directly)
and the same experiment covers schemes the paper never plotted.  The
experiment functions return plain lists of dictionaries (one per table row),
so they can be printed with :func:`repro.simulation.metrics.format_table`,
asserted against in tests and re-used by the benchmark harnesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.parameters import AEParameters
from repro.exceptions import InvalidParametersError
from repro.simulation.engine import (
    SimulationEngine,
    sample_disaster_locations,
)
from repro.simulation.lattice_model import AELatticeModel
from repro.simulation.metrics import scheme_costs, scheme_id_for
from repro.simulation.replication_model import ReplicationModel
from repro.simulation.rs_model import RSStripeModel
from repro.storage.maintenance import MaintenancePolicy

#: Disaster sizes used throughout the paper.
DISASTER_FRACTIONS: Tuple[float, ...] = (0.10, 0.20, 0.30, 0.40, 0.50)

#: The redundancy schemes of the main comparison (Figs. 11 and 12).
RS_SETTINGS: Tuple[Tuple[int, int], ...] = ((10, 4), (8, 2), (5, 5), (4, 12))
AE_SETTINGS: Tuple[AEParameters, ...] = (
    AEParameters.single(),
    AEParameters.double(2, 5),
    AEParameters.triple(2, 5),
)
REPLICATION_FACTORS: Tuple[int, ...] = (2, 3, 4)

#: Schemes of the single-failure study (Fig. 13).
FIG13_SCHEMES: Tuple[str, ...] = ("RS(4,12)", "AE(1,-,-)", "AE(2,2,5)", "AE(3,2,5)")


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared configuration of the disaster experiments."""

    data_blocks: int = 1_000_000
    location_count: int = 100
    seed: int = 7
    disaster_fractions: Tuple[float, ...] = DISASTER_FRACTIONS

    @classmethod
    def paper_scale(cls) -> "ExperimentConfig":
        """The paper's setup: one million data blocks over 100 locations."""
        return cls()

    @classmethod
    def quick(cls, data_blocks: int = 50_000) -> "ExperimentConfig":
        """A reduced-scale configuration for tests and fast benchmark runs."""
        return cls(data_blocks=data_blocks)

    def scaled(self, data_blocks: int) -> "ExperimentConfig":
        return ExperimentConfig(
            data_blocks=data_blocks,
            location_count=self.location_count,
            seed=self.seed,
            disaster_fractions=self.disaster_fractions,
        )


def sample_disaster(
    config: ExperimentConfig, fraction: float, offset: int = 0
) -> np.ndarray:
    """Locations taken down by a disaster of the given size."""
    if not 0.0 <= fraction <= 1.0:
        raise InvalidParametersError("disaster fraction must lie in [0, 1]")
    return sample_disaster_locations(
        config.location_count, fraction, config.seed, offset
    )


# ----------------------------------------------------------------------
# Engine construction helpers
# ----------------------------------------------------------------------
def _engines(
    config: ExperimentConfig, scheme_ids: Sequence[str]
) -> List[SimulationEngine]:
    """One engine (placement built once, reused across fractions) per scheme."""
    return [
        SimulationEngine(
            scheme_id, config.data_blocks, config.location_count, config.seed
        )
        for scheme_id in scheme_ids
    ]


def _comparison_scheme_ids() -> List[str]:
    """The Figs. 11/12 comparison set, in the historical row order."""
    ids = [f"rs-{k}-{m}" for k, m in RS_SETTINGS]
    ids.extend(scheme_id_for(params) for params in AE_SETTINGS)
    ids.extend(f"rep-{copies}" for copies in REPLICATION_FACTORS)
    return ids


def build_ae_models(
    config: ExperimentConfig, settings: Sequence[AEParameters] = AE_SETTINGS
) -> Dict[str, AELatticeModel]:
    return {
        params.spec(): AELatticeModel(
            params, config.data_blocks, config.location_count, seed=config.seed
        )
        for params in settings
    }


def build_rs_models(
    config: ExperimentConfig, settings: Sequence[Tuple[int, int]] = RS_SETTINGS
) -> Dict[str, RSStripeModel]:
    return {
        f"RS({k},{m})": RSStripeModel(
            k, m, config.data_blocks, config.location_count, seed=config.seed
        )
        for k, m in settings
    }


def build_replication_models(
    config: ExperimentConfig, factors: Sequence[int] = REPLICATION_FACTORS
) -> Dict[str, ReplicationModel]:
    return {
        f"{copies}-way replication": ReplicationModel(
            copies, config.data_blocks, config.location_count, seed=config.seed
        )
        for copies in factors
    }


# ----------------------------------------------------------------------
# Figure 11: data loss after repairs
# ----------------------------------------------------------------------
def data_loss_experiment(
    config: Optional[ExperimentConfig] = None,
) -> List[Dict[str, object]]:
    """Data blocks the decoder failed to repair, per scheme and disaster size."""
    config = config or ExperimentConfig.quick()
    engines = _engines(config, _comparison_scheme_ids())
    rows: List[Dict[str, object]] = []
    for offset, fraction in enumerate(config.disaster_fractions):
        failed = sample_disaster(config, fraction, offset)
        for engine in engines:
            metrics = engine.run_disaster(failed, disaster_fraction=fraction)
            rows.append(
                _row(metrics.scheme, fraction, config, data_loss=metrics.data_loss)
            )
    return rows


# ----------------------------------------------------------------------
# Figure 12: vulnerable data under minimal maintenance
# ----------------------------------------------------------------------
def vulnerable_data_experiment(
    config: Optional[ExperimentConfig] = None,
) -> List[Dict[str, object]]:
    """Data blocks left without redundancy after minimal-maintenance repairs."""
    config = config or ExperimentConfig.quick()
    engines = _engines(config, _comparison_scheme_ids())
    rows: List[Dict[str, object]] = []
    for offset, fraction in enumerate(config.disaster_fractions):
        failed = sample_disaster(config, fraction, offset)
        for engine in engines:
            metrics = engine.run_disaster(
                failed, disaster_fraction=fraction, policy=MaintenancePolicy.MINIMAL
            )
            rows.append(
                _row(
                    metrics.scheme,
                    fraction,
                    config,
                    vulnerable=metrics.vulnerable_data,
                )
            )
    return rows


# ----------------------------------------------------------------------
# Figure 13: single-failure repairs
# ----------------------------------------------------------------------
def single_failure_experiment(
    config: Optional[ExperimentConfig] = None,
) -> List[Dict[str, object]]:
    """Share of repairs that were single-failure repairs (RS(4,12) vs AE codes)."""
    config = config or ExperimentConfig.quick()
    scheme_ids = ["rs-4-12"] + [scheme_id_for(params) for params in AE_SETTINGS]
    engines = _engines(config, scheme_ids)
    rows: List[Dict[str, object]] = []
    for offset, fraction in enumerate(config.disaster_fractions):
        failed = sample_disaster(config, fraction, offset)
        for engine in engines:
            metrics = engine.run_disaster(failed, disaster_fraction=fraction)
            rows.append(
                {
                    "scheme": metrics.scheme,
                    "disaster (%)": int(round(fraction * 100)),
                    "single failures (% of repairs)": round(
                        metrics.single_failure_fraction * 100.0, 1
                    ),
                }
            )
    return rows


# ----------------------------------------------------------------------
# Table VI: repair rounds
# ----------------------------------------------------------------------
def repair_rounds_experiment(
    config: Optional[ExperimentConfig] = None,
) -> List[Dict[str, object]]:
    """Number of repair rounds needed by each AE setting per disaster size."""
    config = config or ExperimentConfig.quick()
    engines = _engines(config, [scheme_id_for(params) for params in AE_SETTINGS])
    rows: List[Dict[str, object]] = []
    for engine in engines:
        row: Dict[str, object] = {"code": engine.scheme_name}
        for offset, fraction in enumerate(config.disaster_fractions):
            failed = sample_disaster(config, fraction, offset)
            metrics = engine.run_disaster(failed, disaster_fraction=fraction)
            row[f"{int(round(fraction * 100))}%"] = metrics.repair_rounds
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Table IV: analytic costs
# ----------------------------------------------------------------------
def costs_table() -> List[Dict[str, object]]:
    """Additional storage and single-failure cost per scheme (Table IV)."""
    return scheme_costs()


# ----------------------------------------------------------------------
# Placement balance (Sec. V-C, "Block Placements")
# ----------------------------------------------------------------------
def placement_balance_report(
    config: Optional[ExperimentConfig] = None,
) -> List[Dict[str, object]]:
    """Blocks-per-location statistics and the stripe-spreading observation."""
    config = config or ExperimentConfig.quick()
    rows: List[Dict[str, object]] = []
    rs_engine = SimulationEngine(
        "rs-10-4", config.data_blocks, config.location_count, config.seed
    )
    rs_placement = rs_engine.placement
    counts = rs_placement.blocks_per_location()
    rows.append(
        {
            "scheme": rs_placement.name,
            "blocks": int(counts.sum()),
            "mean blocks/location": round(float(counts.mean()), 1),
            "std blocks/location": round(float(counts.std(ddof=1)), 2),
            "stripes fully spread": rs_placement.stripes_fully_spread(),
            "stripes": rs_placement.stripes,
        }
    )
    ae_engine = SimulationEngine(
        "ae-3-2-5", config.data_blocks, config.location_count, config.seed
    )
    ae_counts = ae_engine.placement.blocks_per_location()
    rows.append(
        {
            "scheme": ae_engine.scheme_name,
            "blocks": int(ae_counts.sum()),
            "mean blocks/location": round(float(ae_counts.mean()), 1),
            "std blocks/location": round(float(ae_counts.std(ddof=1)), 2),
            "stripes fully spread": "n/a (no stripes)",
            "stripes": "n/a",
        }
    )
    return rows


# ----------------------------------------------------------------------
# Aggregate runner
# ----------------------------------------------------------------------
def run_all(config: Optional[ExperimentConfig] = None) -> Dict[str, List[Dict[str, object]]]:
    """Run every experiment and return the tables keyed by experiment id."""
    config = config or ExperimentConfig.quick()
    return {
        "table4_costs": costs_table(),
        "fig11_data_loss": data_loss_experiment(config),
        "fig12_vulnerable_data": vulnerable_data_experiment(config),
        "fig13_single_failures": single_failure_experiment(config),
        "table6_repair_rounds": repair_rounds_experiment(config),
        "placement_balance": placement_balance_report(config),
    }


def _row(
    scheme: str,
    fraction: float,
    config: ExperimentConfig,
    data_loss: Optional[int] = None,
    vulnerable: Optional[int] = None,
) -> Dict[str, object]:
    row: Dict[str, object] = {
        "scheme": scheme,
        "disaster (%)": int(round(fraction * 100)),
    }
    if data_loss is not None:
        row["data loss (blocks)"] = int(data_loss)
        row["data loss (% of data)"] = round(100.0 * data_loss / config.data_blocks, 3)
    if vulnerable is not None:
        row["vulnerable data (blocks)"] = int(vulnerable)
        row["vulnerable data (% of data)"] = round(
            100.0 * vulnerable / config.data_blocks, 2
        )
    return row
