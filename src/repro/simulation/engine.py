"""Scheme-agnostic discrete-event disaster & churn simulation engine.

The paper's headline results (Figs. 11-13, Tables IV & VI) are
disaster-recovery and churn simulations.  Before this module the simulation
layer hard-coded three bespoke availability models (AE lattice, RS stripes,
replication); every scheme the :mod:`repro.schemes` registry learned to
*serve* still needed a fourth hand-written model before it could be
*simulated*.  This engine closes that gap:

* :class:`SimulatedPlacement` tracks block->location liveness for one scheme
  without materialising a single payload byte -- exactly like the paper's
  table-driven simulation of Table V, which is what lets the experiments run
  at the paper's scale (one million data blocks, 100 locations) in seconds;
* two adapters cover every registered scheme: :class:`LatticeSimulation`
  (the vectorised AE(alpha, s, p) lattice) and :class:`StripeSimulation`
  (any :class:`~repro.codes.base.StripeCode` -- Reed-Solomon, LRC, flat
  XOR, replication -- driven by the code's *own* decodability test and
  cheapest repair plan, ``can_decode`` / ``repair_read_positions``);
* one event loop (:meth:`SimulationEngine.run_events`) consumes
  :class:`~repro.storage.failures.Disaster` one-shots (including disasters
  built from :class:`~repro.storage.failures.CorrelatedFailureDomains`) and
  :class:`~repro.storage.failures.ChurnTrace` /
  :class:`~repro.simulation.traces.SessionTrace` churn, honouring
  :class:`~repro.storage.maintenance.MaintenancePolicy` and
  :class:`~repro.storage.maintenance.MaintenanceBudget`.

The engine reproduces the legacy models' fixed-seed metrics exactly (same
placement draws, same repair semantics); ``AELatticeModel``,
``RSStripeModel`` and ``ReplicationModel`` remain importable as thin shims
over the adapters defined here.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.codes.base import StripeCode
from repro.codes.replication import ReplicationCode
from repro.core.parameters import AEParameters, StrandClass
from repro.exceptions import InvalidParametersError
from repro.simulation.metrics import DisasterMetrics, scheme_id_for
from repro.storage.failures import ChurnTrace, Disaster
from repro.storage.maintenance import MaintenanceBudget, MaintenancePolicy
from repro.storage.topology import Topology

if TYPE_CHECKING:
    from repro.codes.entanglement import PuncturedEntanglementScheme
    from repro.schemes.base import RedundancyScheme
    from repro.simulation.traces import SessionTrace

__all__ = [
    "EngineOutcome",
    "EngineRun",
    "LatticeSimulation",
    "SimulatedPlacement",
    "SimulationEngine",
    "SimulationEvent",
    "StepMetrics",
    "StripeSimulation",
    "build_simulation",
    "normalise_events",
    "punctured_parity_mask",
    "sample_disaster_locations",
    "simulate_disasters",
    "vectorised_input_indices",
    "vectorised_output_indices",
]

#: Anything :func:`build_simulation` resolves to a simulation adapter: a
#: registry id (or legacy SchemeSpec tuple/int), a live scheme instance, a
#: bare stripe code or an AE parameter setting.
SchemeLike = Union[str, Tuple[object, ...], int, AEParameters, StripeCode, "RedundancyScheme"]

#: Anything :meth:`SimulationEngine.run_disaster` accepts as a disaster: a
#: :class:`Disaster`, a topology target string (``"site:0"``), a fraction in
#: ``[0, 1]`` or an explicit array/sequence of location ids.
DisasterLike = Union[Disaster, str, float, np.ndarray, Sequence[int]]



# ----------------------------------------------------------------------
# Vectorised lattice wiring (Tables I & II for whole index ranges)
# ----------------------------------------------------------------------
def vectorised_input_indices(params: AEParameters, n: int) -> np.ndarray:
    """Input-parity creators for nodes ``1..n`` and every strand class.

    Returns an ``(n, alpha)`` int64 array; entry 0 means "virtual zero parity"
    (the strand starts at that node).  This is the vectorised equivalent of
    :func:`repro.core.rules.input_index`.
    """
    indices = np.arange(1, n + 1, dtype=np.int64)
    s, p = params.s, params.p
    columns = []
    for strand_class in params.strand_classes:
        if strand_class is StrandClass.HORIZONTAL:
            h = indices - s
        elif s == 1:
            h = indices - p
        else:
            remainder = indices % s
            is_top = remainder == 1
            is_bottom = remainder == 0
            if strand_class is StrandClass.RIGHT_HANDED:
                h = np.where(
                    is_top,
                    indices - s * p + (s * s - 1),
                    indices - (s + 1),
                )
            else:  # left-handed
                h = np.where(
                    is_bottom,
                    indices - s * p + (s - 1) ** 2,
                    indices - (s - 1),
                )
        columns.append(np.maximum(h, 0))
    return np.stack(columns, axis=1)


def vectorised_output_indices(params: AEParameters, n: int) -> np.ndarray:
    """Successor nodes ``j`` for nodes ``1..n`` and every class (Table II)."""
    indices = np.arange(1, n + 1, dtype=np.int64)
    s, p = params.s, params.p
    columns = []
    for strand_class in params.strand_classes:
        if strand_class is StrandClass.HORIZONTAL:
            j = indices + s
        elif s == 1:
            j = indices + p
        else:
            remainder = indices % s
            is_top = remainder == 1
            is_bottom = remainder == 0
            if strand_class is StrandClass.RIGHT_HANDED:
                j = np.where(
                    is_bottom,
                    indices + s * p - (s * s - 1),
                    indices + s + 1,
                )
            else:  # left-handed
                j = np.where(
                    is_top,
                    indices + s * p - (s - 1) ** 2,
                    indices + s - 1,
                )
        columns.append(j)
    return np.stack(columns, axis=1)


# ----------------------------------------------------------------------
# Outcome of one disaster + repair pass
# ----------------------------------------------------------------------
@dataclass
class EngineOutcome:
    """Unified result of one disaster + repair pass over any scheme.

    ``initially_missing_redundancy`` counts missing parity/copy blocks,
    ``repaired_redundancy`` the ones the maintenance policy restored.
    ``single_failure_repairs`` is the scheme's own notion of a cheap repair:
    first-round repairs for the AE lattice (Fig. 13), repairs of a stripe's
    only missing block for stripe codes.  ``deferred_data`` counts data
    blocks that were repairable but left missing because the
    :class:`~repro.storage.maintenance.MaintenanceBudget` ran out -- they are
    *not* data loss.
    """

    scheme: str
    scheme_id: str
    data_blocks: int
    initially_missing_data: int = 0
    initially_missing_redundancy: int = 0
    repaired_data: int = 0
    repaired_redundancy: int = 0
    single_failure_repairs: int = 0
    rounds: int = 0
    repaired_per_round: List[int] = field(default_factory=list)
    data_loss: int = 0
    vulnerable_data: int = 0
    blocks_read: int = 0
    deferred_data: int = 0

    @property
    def single_failure_fraction(self) -> float:
        """Share of repaired data blocks fixed by the cheap single-failure path."""
        if self.repaired_data == 0:
            return 0.0
        return self.single_failure_repairs / self.repaired_data

    def metrics(self, disaster_fraction: float, label: str = "") -> DisasterMetrics:
        """Condense into the table-friendly :class:`DisasterMetrics` cell."""
        return DisasterMetrics(
            scheme=self.scheme,
            disaster_fraction=disaster_fraction,
            data_blocks=self.data_blocks,
            data_loss=self.data_loss,
            vulnerable_data=self.vulnerable_data,
            repair_rounds=self.rounds,
            single_failure_fraction=self.single_failure_fraction,
            repaired_data=self.repaired_data,
            blocks_read=self.blocks_read,
            deferred_data=self.deferred_data,
            label=label,
        )


# ----------------------------------------------------------------------
# The liveness-tracking placements
# ----------------------------------------------------------------------
class SimulatedPlacement(ABC):
    """Block->location liveness of one scheme, without materialised bytes.

    Subclasses lay the scheme's blocks out over ``location_count`` locations
    (random placement, like the paper's Sec. V-C setup) and answer one
    question: given a set of failed locations and a maintenance policy, what
    happens to the data?
    """

    def __init__(
        self, scheme_id: str, name: str, data_blocks: int, location_count: int, seed: int
    ) -> None:
        if data_blocks < 1:
            raise InvalidParametersError("data_blocks must be positive")
        if location_count < 1:
            raise InvalidParametersError("location_count must be positive")
        self._scheme_id = scheme_id
        self._name = name
        self._n = data_blocks
        self._locations = location_count
        self._seed = seed

    @property
    def scheme_id(self) -> str:
        """Registry identifier of the simulated scheme (e.g. ``"rs-10-4"``)."""
        return self._scheme_id

    @property
    def name(self) -> str:
        """Display name of the scheme (e.g. ``"RS(10,4)"``)."""
        return self._name

    @property
    def data_blocks(self) -> int:
        return self._n

    @property
    def location_count(self) -> int:
        return self._locations

    @property
    def seed(self) -> int:
        return self._seed

    @property
    @abstractmethod
    def redundancy_blocks(self) -> int:
        """Parity / copy blocks stored next to the data blocks."""

    @property
    def total_blocks(self) -> int:
        return self._n + self.redundancy_blocks

    @abstractmethod
    def blocks_per_location(self) -> np.ndarray:
        """Histogram of blocks per location (placement balance check)."""

    @abstractmethod
    def run_repair(
        self,
        failed_locations: np.ndarray,
        policy: MaintenancePolicy = MaintenancePolicy.FULL,
        budget: Optional[MaintenanceBudget] = None,
        max_rounds: int = 200,
    ) -> EngineOutcome:
        """Apply a disaster, run policy-driven repair, collect the metrics."""

    def unavailable_data(
        self,
        offline_locations: np.ndarray,
        policy: MaintenancePolicy = MaintenancePolicy.FULL,
        budget: Optional[MaintenanceBudget] = None,
    ) -> int:
        """Data blocks that cannot be served given the offline locations.

        Under ``FULL``/``MINIMAL`` a block counts as available when the
        scheme can still decode it from online blocks (degraded reads);
        ``NONE`` reports raw exposure -- every data block whose location is
        offline.
        """
        offline = np.asarray(offline_locations, dtype=np.int64)
        if offline.size == 0:
            return 0
        return self.run_repair(offline, policy=policy, budget=budget).data_loss

    def _failed_mask(self, failed_locations: np.ndarray) -> np.ndarray:
        mask = np.zeros(self._locations, dtype=bool)
        mask[np.asarray(failed_locations, dtype=np.int64)] = True
        return mask


class LatticeSimulation(SimulatedPlacement):
    """Availability-only simulation of an AE(alpha, s, p) helical lattice.

    The lattice is kept as a handful of numpy arrays (``data_location``,
    ``parity_location``, the input/output wiring) and repair rounds are
    whole-array operations -- the scheme's own repair plan, vectorised:
    a data block is repairable when some strand still has both adjacent
    parities (a pp-tuple), a parity when an adjacent dp-tuple survives.
    """

    def __init__(
        self,
        params: AEParameters,
        data_blocks: int,
        location_count: int = 100,
        seed: int = 0,
        scheme_id: Optional[str] = None,
        punctured: Optional[np.ndarray] = None,
    ) -> None:
        if scheme_id is None:
            from repro.codes.entanglement import ae_scheme_id

            scheme_id = ae_scheme_id(params)
        super().__init__(scheme_id, params.spec(), data_blocks, location_count, seed)
        self._params = params
        rng = np.random.default_rng(seed)
        alpha = params.alpha
        #: Random placement: every block (data and parity) gets a location.
        self.data_location = rng.integers(0, location_count, size=data_blocks, dtype=np.int64)
        self.parity_location = rng.integers(
            0, location_count, size=(data_blocks, alpha), dtype=np.int64
        )
        #: (n, alpha) mask of punctured parities: never stored, so missing at
        #: time zero -- but regenerable, so FULL maintenance may rebuild them.
        if punctured is None:
            self.punctured = np.zeros((data_blocks, alpha), dtype=bool)
        else:
            self.punctured = np.asarray(punctured, dtype=bool)
            if self.punctured.shape != (data_blocks, alpha):
                raise InvalidParametersError(
                    f"punctured mask shape {self.punctured.shape} does not "
                    f"match (data_blocks, alpha) = ({data_blocks}, {alpha})"
                )
        #: Lattice wiring.
        self.input_creator = vectorised_input_indices(params, data_blocks)
        self.output_node = vectorised_output_indices(params, data_blocks)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def params(self) -> AEParameters:
        return self._params

    @property
    def parity_blocks(self) -> int:
        """Parities actually stored (punctured ones are never written)."""
        return self._n * self._params.alpha - int(self.punctured.sum())

    @property
    def redundancy_blocks(self) -> int:
        return self.parity_blocks

    def blocks_per_location(self) -> np.ndarray:
        counts = np.bincount(self.data_location, minlength=self._locations)
        counts = counts + np.bincount(
            self.parity_location[~self.punctured], minlength=self._locations
        )
        return counts

    # ------------------------------------------------------------------
    # Disaster + repair
    # ------------------------------------------------------------------
    def availability_after(self, failed_locations: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Initial availability arrays after the given locations fail.

        Punctured parities start out missing regardless of location health --
        they were never stored.  The repair rounds may still regenerate them
        (they are ordinary XOR parities), which mirrors how the storage layer
        materialises punctured parities on demand during repair.
        """
        failed_mask = self._failed_mask(failed_locations)
        data_available = ~failed_mask[self.data_location]
        parity_available = ~failed_mask[self.parity_location] & ~self.punctured
        return data_available, parity_available

    def _input_parity_available(self, parity_available: np.ndarray) -> np.ndarray:
        """Availability of the input parity of every (node, class) pair.

        Virtual zero parities (strand starts) are always available.
        """
        alpha = self._params.alpha
        result = np.ones((self._n, alpha), dtype=bool)
        for c in range(alpha):
            creators = self.input_creator[:, c]
            has_input = creators >= 1
            idx = np.clip(creators - 1, 0, self._n - 1)
            result[:, c] = np.where(has_input, parity_available[idx, c], True)
        return result

    @staticmethod
    def _clip_repairs(repairable: np.ndarray, allowed: int) -> np.ndarray:
        """Deterministically keep the first ``allowed`` repairable entries."""
        flat = repairable.ravel()
        over = int(flat.sum()) - allowed
        if over <= 0:
            return repairable
        kept = flat.copy()
        chosen = np.flatnonzero(flat)[allowed:]
        kept[chosen] = False
        return kept.reshape(repairable.shape)

    def run_repair(
        self,
        failed_locations: np.ndarray,
        policy: MaintenancePolicy = MaintenancePolicy.FULL,
        budget: Optional[MaintenanceBudget] = None,
        max_rounds: int = 200,
    ) -> EngineOutcome:
        """Round-based repair until a fixpoint, ``max_rounds`` or the budget.

        ``MaintenancePolicy.MINIMAL`` rebuilds data blocks only (the Fig. 12
        regime); ``NONE`` measures raw exposure without any repairs.
        """
        budget = budget or MaintenanceBudget.unlimited()
        repair_parities = policy.repairs_parities()
        data_available, parity_available = self.availability_after(failed_locations)
        outcome = EngineOutcome(
            scheme=self._name,
            scheme_id=self._scheme_id,
            data_blocks=self._n,
            initially_missing_data=int((~data_available).sum()),
            initially_missing_redundancy=int((~parity_available).sum()),
        )
        alpha = self._params.alpha

        if policy is not MaintenancePolicy.NONE:
            for round_number in range(1, max_rounds + 1):
                if not budget.allows_round(round_number):
                    break
                input_avail = self._input_parity_available(parity_available)
                # Data block repair: some strand has both adjacent parities.
                data_repairable = (~data_available) & np.any(
                    input_avail & parity_available, axis=1
                )
                # Parity repair (two dp-tuples).
                if repair_parities:
                    left_ok = data_available[:, None] & input_avail
                    successor = self.output_node  # (n, alpha)
                    successor_exists = successor <= self._n
                    succ_idx = np.clip(successor - 1, 0, self._n - 1)
                    right_data = data_available[succ_idx]
                    right_parity = parity_available[succ_idx, np.arange(alpha)[None, :]]
                    right_ok = successor_exists & right_data & right_parity
                    parity_repairable = (~parity_available) & (left_ok | right_ok)
                else:
                    parity_repairable = np.zeros_like(parity_available)

                if budget.max_repairs_per_round is not None:
                    allowed = budget.clip_round(
                        int(data_repairable.sum()) + int(parity_repairable.sum())
                    )
                    data_repairable = self._clip_repairs(data_repairable, allowed)
                    allowed -= int(data_repairable.sum())
                    parity_repairable = self._clip_repairs(parity_repairable, allowed)

                repaired_now = int(data_repairable.sum()) + int(parity_repairable.sum())
                if repaired_now == 0:
                    break
                if round_number == 1:
                    outcome.single_failure_repairs = int(data_repairable.sum())
                outcome.repaired_data += int(data_repairable.sum())
                outcome.repaired_redundancy += int(parity_repairable.sum())
                outcome.repaired_per_round.append(repaired_now)
                data_available = data_available | data_repairable
                parity_available = parity_available | parity_repairable
            outcome.rounds = len(outcome.repaired_per_round)

        outcome.data_loss = int((~data_available).sum())
        outcome.vulnerable_data = self._vulnerable_data(data_available, parity_available)
        # Every lattice repair XORs exactly two surviving blocks (Sec. V-C3).
        outcome.blocks_read = 2 * (outcome.repaired_data + outcome.repaired_redundancy)
        budget_limited = (
            budget.max_repairs_per_round is not None or budget.max_rounds is not None
        )
        if budget_limited and policy is not MaintenancePolicy.NONE:
            # Blocks still repairable when the budget ran out are deferred,
            # not lost (under NONE nothing would ever repair them).
            outcome.deferred_data = self._deferred_data(data_available, parity_available)
            outcome.data_loss -= outcome.deferred_data
        return outcome

    def _deferred_data(
        self, data_available: np.ndarray, parity_available: np.ndarray
    ) -> int:
        """Missing data blocks that are still repairable (budget ran out)."""
        input_avail = self._input_parity_available(parity_available)
        repairable = (~data_available) & np.any(input_avail & parity_available, axis=1)
        return int(repairable.sum())

    def _vulnerable_data(
        self, data_available: np.ndarray, parity_available: np.ndarray
    ) -> int:
        """Data blocks present but no longer protected by any complete pp-tuple."""
        input_avail = self._input_parity_available(parity_available)
        protected = np.any(input_avail & parity_available, axis=1)
        return int((data_available & ~protected).sum())


@dataclass
class StripeDisasterState:
    """Raw per-stripe evaluation of one disaster over a stripe population.

    All arrays are per stripe; ``vulnerable_*`` count vulnerable *data*
    blocks under the respective maintenance policy.  The legacy model shims
    derive their outcome dataclasses from this state.
    """

    unavailable: np.ndarray  # (stripes, n) bool; padding forced available
    data_missing: np.ndarray  # (stripes, k) bool, masked to real data
    decodable: np.ndarray  # (stripes,) bool, via the code's can_decode
    missing_count: np.ndarray  # (stripes,) missing blocks (padding excluded)
    data_missing_count: np.ndarray  # (stripes,)
    redundancy_missing_count: np.ndarray  # (stripes,)
    stripe_reads: np.ndarray  # (stripes,) reads of the cheapest repair plan
    single_failure: np.ndarray  # (stripes,) bool: only failure is one data block
    vulnerable_none: np.ndarray  # (stripes,)
    vulnerable_minimal: np.ndarray  # (stripes,)
    vulnerable_full: np.ndarray  # (stripes,)


class StripeSimulation(SimulatedPlacement):
    """Availability-only simulation of any :class:`StripeCode` population.

    Data blocks are packed ``k`` per stripe (the final stripe is completed
    with always-available zero padding) and every stripe's ``n`` blocks get
    random locations.  Decodability and repair-read costs are *delegated to
    the code*: stripes are grouped by their failure pattern and each unique
    pattern is answered once through ``can_decode`` (the scheme's erasure
    tolerance -- MDS for RS, rank-based for LRC, peeling for flat XOR) and
    ``repair_read_positions`` (the scheme's cheapest repair plan -- ``k``
    blocks for RS, the local group for LRC, the smallest parity equation for
    flat XOR, one copy for replication).  MDS and replication codes take a
    closed-form fast path that skips the pattern loop entirely.
    """

    def __init__(
        self,
        code: StripeCode,
        data_blocks: int,
        location_count: int = 100,
        seed: int = 0,
        scheme_id: Optional[str] = None,
    ) -> None:
        super().__init__(
            scheme_id or f"stripe-{code.name}", code.name, data_blocks, location_count, seed
        )
        self._code = code
        self.stripes = -(-data_blocks // code.k)
        rng = np.random.default_rng(seed)
        #: Locations of every block, shape (stripes, k + m); data first.
        self.block_location = rng.integers(
            0, location_count, size=(self.stripes, code.n), dtype=np.int64
        )
        #: Mask of data positions that actually hold data (the last stripe may
        #: be partially filled with zero padding).
        self.data_mask = np.zeros((self.stripes, code.k), dtype=bool)
        self.data_mask.ravel()[:data_blocks] = True
        # The default StripeCode.can_decode is the MDS criterion (any k
        # blocks); codes that inherit it unchanged get the closed-form path.
        self._is_mds = type(code).can_decode is StripeCode.can_decode
        self._is_replication = isinstance(code, ReplicationCode)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def code(self) -> StripeCode:
        return self._code

    @property
    def encoded_blocks(self) -> int:
        return self.stripes * self._code.m

    @property
    def redundancy_blocks(self) -> int:
        return self.encoded_blocks

    def blocks_per_location(self) -> np.ndarray:
        return np.bincount(self.block_location.ravel(), minlength=self._locations)

    def stripes_fully_spread(self) -> int:
        """Stripes whose n blocks all landed on distinct locations.

        Reproduces the placement-skew observation of Sec. V-C ("only 38,429
        stripes had their 14 blocks distributed to different locations").
        """
        sorted_locations = np.sort(self.block_location, axis=1)
        distinct = (np.diff(sorted_locations, axis=1) != 0).sum(axis=1) + 1
        return int((distinct == self._code.n).sum())

    # ------------------------------------------------------------------
    # Disaster evaluation
    # ------------------------------------------------------------------
    def evaluate(self, failed_locations: np.ndarray) -> StripeDisasterState:
        """Evaluate one disaster: decodability, repair reads, vulnerability."""
        code = self._code
        k, n = code.k, code.n
        failed_mask = self._failed_mask(failed_locations)
        unavailable = failed_mask[self.block_location]  # (stripes, n)
        # Padding blocks are zero by construction, hence always recoverable:
        # treat them as available (the legacy RS model did the same).
        unavailable[:, :k] &= self.data_mask
        data_missing = unavailable[:, :k]
        data_missing_count = data_missing.sum(axis=1)
        redundancy_missing_count = unavailable[:, k:].sum(axis=1)
        missing_count = data_missing_count + redundancy_missing_count

        if self._is_replication:
            per_pattern = None
            available_count = n - missing_count
            decodable = available_count >= 1
            # The cheapest plan copies one surviving replica.
            stripe_reads = np.where(decodable & (data_missing_count > 0), 1, 0)
            single_failure = (missing_count == 1) & (data_missing_count == 1)
            primary_up = ~data_missing[:, 0]
            # Legacy semantics: minimal maintenance restores nothing beyond
            # the primary copy, so a block is vulnerable when a single copy
            # survives the disaster.
            vulnerable_minimal = (available_count == 1).astype(np.int64)
            vulnerable_none = ((available_count == 1) & primary_up).astype(np.int64)
            vulnerable_full = np.zeros(self.stripes, dtype=np.int64)
        elif self._is_mds:
            per_pattern = None
            m = code.m
            decodable = missing_count <= m
            stripe_reads = np.where(decodable & (data_missing_count > 0), k, 0)
            single_failure = (missing_count == 1) & (data_missing_count == 1)
            present_none = self.data_mask & ~data_missing
            present_after = self.data_mask & (~data_missing | decodable[:, None])
            # A data block is vulnerable when the remaining blocks no longer
            # determine it: fewer than k other blocks available.
            residual_minimal = np.where(decodable, redundancy_missing_count, missing_count)
            vulnerable_minimal = np.where(
                residual_minimal >= m, present_after.sum(axis=1), 0
            )
            vulnerable_none = np.where(missing_count >= m, present_none.sum(axis=1), 0)
            vulnerable_full = np.where(decodable, 0, present_none.sum(axis=1))
        else:
            per_pattern = self._evaluate_patterns(unavailable)
            (decodable, stripe_reads, single_failure,
             vulnerable_none, vulnerable_minimal, vulnerable_full) = per_pattern

        return StripeDisasterState(
            unavailable=unavailable,
            data_missing=data_missing,
            decodable=decodable,
            missing_count=missing_count,
            data_missing_count=data_missing_count,
            redundancy_missing_count=redundancy_missing_count,
            stripe_reads=stripe_reads,
            single_failure=single_failure,
            vulnerable_none=vulnerable_none,
            vulnerable_minimal=vulnerable_minimal,
            vulnerable_full=vulnerable_full,
        )

    def _evaluate_patterns(self, unavailable: np.ndarray) -> StripeDisasterState:
        """Generic path: answer each unique failure pattern through the code."""
        code = self._code
        k, n = code.k, code.n
        packed = np.packbits(unavailable, axis=1)
        patterns, inverse = np.unique(packed, axis=0, return_inverse=True)
        count = patterns.shape[0]
        decodable_u = np.zeros(count, dtype=bool)
        reads_u = np.zeros(count, dtype=np.int64)
        single_u = np.zeros(count, dtype=bool)
        vuln_none_u = np.zeros((count, k), dtype=bool)
        vuln_minimal_u = np.zeros((count, k), dtype=bool)
        vuln_full_u = np.zeros((count, k), dtype=bool)

        def vulnerable_positions(available_after: set) -> np.ndarray:
            out = np.zeros(k, dtype=bool)
            for position in available_after:
                if position >= k:
                    continue
                plan = code.repair_read_positions(
                    position, sorted(available_after - {position})
                )
                out[position] = plan is None
            return out

        for index in range(count):
            pattern = np.unpackbits(patterns[index])[:n].astype(bool)
            missing = np.flatnonzero(pattern)
            available = [int(p) for p in np.flatnonzero(~pattern)]
            decodable = code.can_decode(available)
            decodable_u[index] = decodable
            missing_data = [int(p) for p in missing if p < k]
            if decodable and missing_data:
                # Union of the cheapest plans: a block fetched for one repair
                # is cached for the next (the live StripeScheme's semantics).
                union: set = set()
                for position in missing_data:
                    plan = code.repair_read_positions(position, available)
                    if plan is None:
                        union = set(available)
                        break
                    union.update(plan)
                reads_u[index] = len(union)
            single_u[index] = len(missing) == 1 and bool(missing[0] < k)
            available_set = set(available)
            vuln_none_u[index] = vulnerable_positions(available_set)
            after_minimal = (
                available_set | set(missing_data) if decodable else available_set
            )
            vuln_minimal_u[index] = vulnerable_positions(after_minimal)
            after_full = set(range(n)) if decodable else available_set
            vuln_full_u[index] = vulnerable_positions(after_full)

        def per_stripe(vuln: np.ndarray) -> np.ndarray:
            return (vuln[inverse] & self.data_mask).sum(axis=1)

        return (
            decodable_u[inverse],
            reads_u[inverse],
            single_u[inverse],
            per_stripe(vuln_none_u),
            per_stripe(vuln_minimal_u),
            per_stripe(vuln_full_u),
        )

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def run_repair(
        self,
        failed_locations: np.ndarray,
        policy: MaintenancePolicy = MaintenancePolicy.FULL,
        budget: Optional[MaintenanceBudget] = None,
        max_rounds: int = 200,
    ) -> EngineOutcome:
        """Apply a disaster and collect the stripe metrics for ``policy``.

        Stripe repair is single-round (every decodable stripe is restored in
        one decode); ``budget.max_repairs_per_round`` caps the number of data
        blocks repaired, in stripe order, leaving the rest *deferred*.
        """
        budget = budget or MaintenanceBudget.unlimited()
        state = self.evaluate(failed_locations)
        outcome = EngineOutcome(
            scheme=self._name,
            scheme_id=self._scheme_id,
            data_blocks=self._n,
            initially_missing_data=int(state.data_missing_count.sum()),
            initially_missing_redundancy=int(state.redundancy_missing_count.sum()),
        )
        repairable = state.decodable & (state.data_missing_count > 0)
        unrecoverable = int(state.data_missing_count[~state.decodable].sum())

        if policy is MaintenancePolicy.NONE:
            outcome.data_loss = outcome.initially_missing_data
            outcome.vulnerable_data = int(state.vulnerable_none.sum())
            return outcome

        repaired_per_stripe = np.where(repairable, state.data_missing_count, 0)
        reads_per_stripe = np.where(repairable, state.stripe_reads, 0)
        repairable_redundancy = (
            int(state.redundancy_missing_count[state.decodable].sum())
            if policy.repairs_parities()
            else 0
        )
        if not budget.allows_round(1):
            outcome.deferred_data = int(repaired_per_stripe.sum())
            repaired_per_stripe = np.zeros_like(repaired_per_stripe)
            reads_per_stripe = np.zeros_like(reads_per_stripe)
            repairable_redundancy = 0
        elif budget.max_repairs_per_round is not None:
            allowed = budget.clip_round(int(repaired_per_stripe.sum()))
            cumulative = np.cumsum(repaired_per_stripe)
            over = cumulative > allowed
            outcome.deferred_data = int(repaired_per_stripe[over].sum())
            repaired_per_stripe = np.where(over, 0, repaired_per_stripe)
            reads_per_stripe = np.where(over, 0, reads_per_stripe)
            # Data repairs take priority; leftover allowance goes to parities.
            allowance_left = budget.clip_round(
                int(repaired_per_stripe.sum()) + repairable_redundancy
            ) - int(repaired_per_stripe.sum())
            repairable_redundancy = min(repairable_redundancy, max(allowance_left, 0))

        outcome.repaired_data = int(repaired_per_stripe.sum())
        outcome.repaired_redundancy = repairable_redundancy
        outcome.single_failure_repairs = int(
            (state.single_failure & (repaired_per_stripe > 0)).sum()
        )
        outcome.blocks_read = int(reads_per_stripe.sum())
        outcome.rounds = 1 if outcome.repaired_data or outcome.repaired_redundancy else 0
        if outcome.rounds:
            outcome.repaired_per_round = [
                outcome.repaired_data + outcome.repaired_redundancy
            ]
        outcome.data_loss = unrecoverable
        vulnerable = (
            state.vulnerable_full
            if policy.repairs_parities()
            else state.vulnerable_minimal
        )
        outcome.vulnerable_data = int(vulnerable.sum())
        return outcome


# ----------------------------------------------------------------------
# Placement construction
# ----------------------------------------------------------------------
def punctured_parity_mask(
    scheme: "PuncturedEntanglementScheme", data_blocks: int
) -> np.ndarray:
    """The (n, alpha) boolean mask of parities the scheme never stores.

    Column ``c`` follows ``params.strand_classes`` order, matching the
    parity-location columns of :class:`LatticeSimulation`.
    """
    from repro.core.blocks import ParityId

    classes = scheme.params.strand_classes
    mask = np.zeros((data_blocks, len(classes)), dtype=bool)
    code = scheme.punctured_code
    for column, strand_class in enumerate(classes):
        for index in range(1, data_blocks + 1):
            if code.is_punctured(ParityId(index, strand_class)):
                mask[index - 1, column] = True
    return mask


def _parity_free_rs(scheme_id: str) -> Optional[StripeCode]:
    """The legacy ``RS(k, 0)`` edge case, which the registry cannot serve."""
    parts = scheme_id.split("-")
    if len(parts) == 3 and parts[0] == "rs" and parts[2] == "0" and parts[1].isdigit():
        from repro.simulation.rs_model import _ParityFreeStripes

        return _ParityFreeStripes(int(parts[1]))
    return None


def build_simulation(
    scheme: SchemeLike,
    data_blocks: int,
    location_count: int = 100,
    seed: int = 0,
    block_size: int = 4096,
) -> SimulatedPlacement:
    """Build the availability simulation of any scheme.

    ``scheme`` may be a registry identifier (``"ae-3-2-5"``, ``"rs-10-4"``,
    ``"lrc-azure"``, ``"rep-3"``, ``"xor-geo"``, ...), a live
    :class:`~repro.schemes.base.RedundancyScheme` instance, a bare
    :class:`~repro.codes.base.StripeCode`, an :class:`AEParameters` setting,
    or any legacy :data:`~repro.simulation.metrics.SchemeSpec`.
    """
    from repro.codes.entanglement import EntanglementScheme, PuncturedEntanglementScheme
    from repro.schemes.stripe import StripeScheme

    if isinstance(scheme, AEParameters):
        return LatticeSimulation(scheme, data_blocks, location_count, seed)
    if isinstance(scheme, StripeCode):
        return StripeSimulation(scheme, data_blocks, location_count, seed)
    if isinstance(scheme, (str, tuple, int)):
        import repro.schemes as schemes

        scheme_id = scheme_id_for(scheme)
        parity_free = _parity_free_rs(scheme_id)
        if parity_free is not None:
            return StripeSimulation(
                parity_free, data_blocks, location_count, seed, scheme_id=scheme_id
            )
        scheme = schemes.get(scheme_id, block_size=block_size)
    if isinstance(scheme, PuncturedEntanglementScheme):
        return LatticeSimulation(
            scheme.params,
            data_blocks,
            location_count,
            seed,
            scheme_id=scheme.scheme_id,
            punctured=punctured_parity_mask(scheme, data_blocks),
        )
    if isinstance(scheme, EntanglementScheme):
        return LatticeSimulation(
            scheme.params, data_blocks, location_count, seed, scheme_id=scheme.scheme_id
        )
    if isinstance(scheme, StripeScheme):
        return StripeSimulation(
            scheme.code, data_blocks, location_count, seed, scheme_id=scheme.scheme_id
        )
    raise InvalidParametersError(
        f"cannot build a simulation for {scheme!r}; expected a scheme id, "
        "RedundancyScheme, StripeCode or AEParameters"
    )


# ----------------------------------------------------------------------
# The event loop
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SimulationEvent:
    """One step of the discrete-event timeline: locations failing/returning."""

    time: float
    fail: Tuple[int, ...] = ()
    restore: Tuple[int, ...] = ()
    label: str = ""


#: Anything :func:`normalise_events` turns into an event timeline.
EventSource = Union[
    Disaster, ChurnTrace, SimulationEvent, "SessionTrace", Iterable[object]
]


def normalise_events(source: EventSource) -> List[SimulationEvent]:
    """Normalise any failure source into a list of :class:`SimulationEvent`.

    Accepts a :class:`Disaster` (one-shot, including disasters built with
    :meth:`CorrelatedFailureDomains.domain_disaster`), a :class:`ChurnTrace`,
    a :class:`~repro.simulation.traces.SessionTrace` (discretised first), a
    ready list of events, or any iterable mixing them.
    """
    from repro.simulation.traces import SessionTrace

    if isinstance(source, (str, bytes)):
        raise InvalidParametersError(
            f"cannot interpret {source!r} as simulation events; load trace "
            "files first (ChurnTrace.load(path))"
        )
    if isinstance(source, SimulationEvent):
        return [source]
    if isinstance(source, Disaster):
        return [
            SimulationEvent(time=0.0, fail=tuple(source.failed_locations), label="disaster")
        ]
    if isinstance(source, ChurnTrace):
        return [
            SimulationEvent(
                time=float(event.time),
                fail=tuple(event.departures),
                restore=tuple(event.arrivals),
                label="churn",
            )
            for event in source.events
        ]
    if isinstance(source, SessionTrace):
        return normalise_events(source.to_churn_trace())
    if isinstance(source, Iterable):
        events: List[SimulationEvent] = []
        for item in source:
            events.extend(normalise_events(item))
        return events
    raise InvalidParametersError(f"cannot interpret {source!r} as simulation events")


@dataclass(frozen=True)
class StepMetrics:
    """State of one scheme after one event of the timeline."""

    time: float
    offline_locations: int
    unavailable_data: int
    data_blocks: int

    @property
    def availability(self) -> float:
        if self.data_blocks == 0:
            return 1.0
        return 1.0 - self.unavailable_data / self.data_blocks


@dataclass
class EngineRun:
    """Full event-loop result for one scheme."""

    scheme: str
    scheme_id: str
    data_blocks: int
    steps: List[StepMetrics] = field(default_factory=list)

    @property
    def mean_availability(self) -> float:
        if not self.steps:
            return 1.0
        return float(np.mean([step.availability for step in self.steps]))

    @property
    def min_availability(self) -> float:
        if not self.steps:
            return 1.0
        return float(np.min([step.availability for step in self.steps]))

    @property
    def max_offline(self) -> int:
        return max((step.offline_locations for step in self.steps), default=0)

    @property
    def final_unavailable(self) -> int:
        return self.steps[-1].unavailable_data if self.steps else 0

    def as_row(self) -> Dict[str, object]:
        return {
            "scheme": self.scheme,
            "events": len(self.steps),
            "max offline": self.max_offline,
            "mean availability": round(self.mean_availability, 6),
            "min availability": round(self.min_availability, 6),
            "unavailable at end": self.final_unavailable,
        }


class SimulationEngine:
    """Discrete-event disaster & churn simulation of one scheme.

    One engine wraps one :class:`SimulatedPlacement` (built from any registry
    scheme id) and runs one-shot disasters or event timelines against it with
    a maintenance policy and budget.

    Passing ``topology=`` (a :class:`~repro.storage.topology.Topology`, a
    compact spec string or a JSON file path) sizes the simulation from the
    topology and lets disasters target whole failure domains by name:
    ``engine.run_disaster("site:0")``.
    """

    def __init__(
        self,
        scheme: SchemeLike,
        data_blocks: int = 100_000,
        location_count: int = 100,
        seed: int = 0,
        policy: MaintenancePolicy = MaintenancePolicy.FULL,
        budget: Optional[MaintenanceBudget] = None,
        block_size: int = 4096,
        topology: Optional[Union[Topology, int, str]] = None,
    ) -> None:
        self._topology = Topology.resolve(topology)
        if self._topology is not None:
            location_count = self._topology.node_count
        self._placement = build_simulation(
            scheme, data_blocks, location_count, seed, block_size
        )
        self._policy = policy
        self._budget = budget

    @property
    def placement(self) -> SimulatedPlacement:
        return self._placement

    @property
    def topology(self) -> Optional[Topology]:
        """The explicit topology of the simulated cluster, if one was given."""
        return self._topology

    @property
    def scheme_name(self) -> str:
        return self._placement.name

    @property
    def policy(self) -> MaintenancePolicy:
        return self._policy

    # ------------------------------------------------------------------
    def _disaster_locations(self, disaster: DisasterLike) -> np.ndarray:
        if isinstance(disaster, Disaster):
            return np.asarray(disaster.failed_locations, dtype=np.int64)
        if isinstance(disaster, str):
            if self._topology is None:
                raise InvalidParametersError(
                    f"disaster target {disaster!r} needs a topology; build "
                    "the engine with topology='sites=...,racks=...,nodes=...'"
                )
            return np.asarray(
                self._topology.locations_for_target(disaster), dtype=np.int64
            )
        if isinstance(disaster, float):
            return sample_disaster_locations(
                self._placement.location_count, disaster, self._placement.seed
            )
        return np.asarray(disaster, dtype=np.int64)

    def run_disaster(
        self,
        disaster: DisasterLike,
        disaster_fraction: Optional[float] = None,
        policy: Optional[MaintenancePolicy] = None,
        budget: Optional[MaintenanceBudget] = None,
        label: Optional[str] = None,
    ) -> DisasterMetrics:
        """One-shot disaster: fail, repair per policy, report the metrics.

        ``disaster`` may be a :class:`Disaster`, a topology target string
        (``"site:0"``, needs ``topology=``), an array of location ids or a
        fraction in ``[0, 1]`` (sampled with the placement's seed).  Target
        strings (and labelled :class:`Disaster` instances) carry their label
        into the reported metrics row.
        """
        failed = self._disaster_locations(disaster)
        if label is None:
            if isinstance(disaster, str):
                label = disaster
            elif isinstance(disaster, Disaster):
                label = disaster.label
            else:
                label = ""
        if disaster_fraction is None:
            disaster_fraction = failed.size / self._placement.location_count
        outcome = self._placement.run_repair(
            failed, policy=policy or self._policy, budget=budget or self._budget
        )
        return outcome.metrics(disaster_fraction, label=label)

    def run_outcome(
        self,
        disaster: DisasterLike,
        policy: Optional[MaintenancePolicy] = None,
        budget: Optional[MaintenanceBudget] = None,
    ) -> EngineOutcome:
        """Like :meth:`run_disaster` but returning the full outcome."""
        return self._placement.run_repair(
            self._disaster_locations(disaster),
            policy=policy or self._policy,
            budget=budget or self._budget,
        )

    def run_events(self, events: EventSource) -> EngineRun:
        """Replay an event timeline, sampling data availability per event.

        Repairs are *evaluated* per step (a block counts as available when
        the scheme can still decode it from online blocks) but not persisted:
        like the paper's availability study, the question is what the scheme
        can serve at each instant, not where rebuilt blocks would land.
        """
        timeline = normalise_events(events)
        limit = self._placement.location_count
        out_of_range = {
            location
            for event in timeline
            for location in (*event.fail, *event.restore)
            if not 0 <= location < limit
        }
        if out_of_range:
            raise InvalidParametersError(
                f"event locations {sorted(out_of_range)[:5]} lie outside "
                f"0..{limit - 1}; the trace needs at least "
                f"{max(out_of_range) + 1} locations"
            )
        offline: set = set()
        run = EngineRun(
            scheme=self._placement.name,
            scheme_id=self._placement.scheme_id,
            data_blocks=self._placement.data_blocks,
        )
        for event in timeline:
            offline.update(event.fail)
            offline.difference_update(event.restore)
            offline_array = np.fromiter(sorted(offline), dtype=np.int64, count=len(offline))
            unavailable = self._placement.unavailable_data(
                offline_array, policy=self._policy, budget=self._budget
            )
            run.steps.append(
                StepMetrics(
                    time=event.time,
                    offline_locations=len(offline),
                    unavailable_data=unavailable,
                    data_blocks=self._placement.data_blocks,
                )
            )
        return run


# ----------------------------------------------------------------------
# Batch drivers
# ----------------------------------------------------------------------
def sample_disaster_locations(
    location_count: int, fraction: float, seed: int, offset: int = 0
) -> np.ndarray:
    """Locations taken down by a disaster of the given size (paper, Sec. V-C).

    Uses the same draw as the legacy experiment runner
    (``default_rng(seed + 1000 * offset)``), so engine results line up with
    the historical fixed-seed figures.
    """
    if not 0.0 <= fraction <= 1.0:
        raise InvalidParametersError("disaster fraction must lie in [0, 1]")
    rng = np.random.default_rng(seed + 1000 * offset)
    count = int(round(location_count * fraction))
    return np.sort(rng.choice(location_count, size=count, replace=False))


def simulate_disasters(
    scheme_ids: Sequence[Union[str, AEParameters, tuple, int]],
    data_blocks: int = 20_000,
    location_count: int = 100,
    seed: int = 7,
    fractions: Sequence[Union[float, str]] = (0.10, 0.20, 0.30, 0.40, 0.50),
    policy: MaintenancePolicy = MaintenancePolicy.FULL,
    budget: Optional[MaintenanceBudget] = None,
    topology: Optional[Union[Topology, int, str]] = None,
) -> List[DisasterMetrics]:
    """Disaster-recovery metrics for every scheme at every disaster size.

    One placement per scheme (built once, reused across fractions, exactly
    like the legacy experiment runner) and one independently drawn disaster
    per fraction.  ``fractions`` entries may also be topology target strings
    (``"site:0"``, ``"rack:eu/1"``), resolved against ``topology`` -- those
    disasters are deterministic whole-domain outages rather than random
    draws.  Returns one :class:`DisasterMetrics` per (scheme, fraction)
    cell, fraction-major so the rows print like Figs. 11-13.
    """
    resolved_topology = Topology.resolve(topology)
    if resolved_topology is not None:
        location_count = resolved_topology.node_count
    engines = [
        SimulationEngine(
            scheme_id,
            data_blocks,
            location_count,
            seed,
            policy=policy,
            budget=budget,
            topology=resolved_topology,
        )
        for scheme_id in scheme_ids
    ]
    results: List[DisasterMetrics] = []
    for offset, fraction in enumerate(fractions):
        if isinstance(fraction, str):
            if resolved_topology is None:
                raise InvalidParametersError(
                    f"disaster target {fraction!r} needs a topology"
                )
            failed = np.asarray(
                resolved_topology.locations_for_target(fraction), dtype=np.int64
            )
            size, label = failed.size / location_count, fraction
        else:
            failed = sample_disaster_locations(location_count, fraction, seed, offset)
            size, label = fraction, ""
        for engine in engines:
            results.append(
                engine.run_disaster(failed, disaster_fraction=size, label=label)
            )
    return results
