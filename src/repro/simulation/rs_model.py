"""Vectorised availability model of RS(k, m) stripes for large-scale simulations.

The paper's disaster experiments store one million data blocks with several
Reed-Solomon settings and measure data loss, residual redundancy and repair
efficiency (Figs. 11-13).  As with the AE model, the simulation only tracks
availability: a stripe with at most ``m`` unavailable blocks is repairable;
one with more loses its unavailable data blocks (the paper counts exactly
those as lost, treating the surviving data blocks of a damaged stripe as
available).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.exceptions import InvalidParametersError


@dataclass
class StripeRepairOutcome:
    """Per-disaster metrics of an RS stripe population."""

    scheme: str
    data_blocks: int
    stripes: int
    initially_missing_blocks: int
    initially_missing_data: int
    repaired_data: int
    data_loss: int
    vulnerable_data: int
    single_failure_repairs: int
    blocks_read_for_repair: int

    @property
    def single_failure_fraction(self) -> float:
        """Fraction of repaired data blocks that were their stripe's only failure."""
        if self.repaired_data == 0:
            return 0.0
        return self.single_failure_repairs / self.repaired_data


class RSStripeModel:
    """Availability-only model of RS(k, m) protecting ``data_blocks`` blocks."""

    def __init__(
        self,
        k: int,
        m: int,
        data_blocks: int,
        location_count: int = 100,
        seed: int = 0,
    ) -> None:
        if k < 1 or m < 0:
            raise InvalidParametersError(f"invalid RS setting ({k},{m})")
        if data_blocks < 1:
            raise InvalidParametersError("data_blocks must be positive")
        self.k = k
        self.m = m
        self._data_blocks = data_blocks
        self._locations = location_count
        self.stripes = -(-data_blocks // k)
        rng = np.random.default_rng(seed)
        #: Locations of every block, shape (stripes, k + m); data first.
        self.block_location = rng.integers(
            0, location_count, size=(self.stripes, k + m), dtype=np.int64
        )
        #: Mask of data positions that actually hold data (the last stripe may
        #: be partially filled).
        self.data_mask = np.zeros((self.stripes, k), dtype=bool)
        self.data_mask.ravel()[:data_blocks] = True

    # ------------------------------------------------------------------
    @property
    def scheme(self) -> str:
        return f"RS({self.k},{self.m})"

    @property
    def data_blocks(self) -> int:
        return self._data_blocks

    @property
    def encoded_blocks(self) -> int:
        return self.stripes * self.m

    @property
    def location_count(self) -> int:
        return self._locations

    def stripes_fully_spread(self) -> int:
        """Stripes whose n blocks all landed on distinct locations.

        Reproduces the placement-skew observation of Sec. V-C ("only 38,429
        stripes had their 14 blocks distributed to different locations").
        """
        n = self.k + self.m
        sorted_locations = np.sort(self.block_location, axis=1)
        distinct = (np.diff(sorted_locations, axis=1) != 0).sum(axis=1) + 1
        return int((distinct == n).sum())

    # ------------------------------------------------------------------
    def run_repair(self, failed_locations: np.ndarray) -> StripeRepairOutcome:
        """Apply a disaster and compute the paper's stripe metrics."""
        failed_mask = np.zeros(self._locations, dtype=bool)
        failed_mask[np.asarray(failed_locations, dtype=np.int64)] = True
        unavailable = failed_mask[self.block_location]  # (stripes, k + m)
        data_unavailable = unavailable[:, : self.k] & self.data_mask
        missing_per_stripe = unavailable[:, : self.k] & self.data_mask
        missing_per_stripe = np.concatenate(
            [missing_per_stripe, unavailable[:, self.k :]], axis=1
        )
        missing_count = missing_per_stripe.sum(axis=1)

        decodable = missing_count <= self.m
        # Data loss: unavailable data blocks in undecodable stripes.
        data_loss = int(data_unavailable[~decodable].sum())
        missing_data_count = data_unavailable.sum(axis=1)
        repaired_data = int(missing_data_count[decodable].sum())
        initially_missing_data = int(data_unavailable.sum())
        initially_missing_blocks = int(missing_per_stripe.sum())

        # Single-failure repairs: the repaired block was its stripe's only failure.
        single_failure_repairs = int(
            ((missing_count == 1) & (missing_data_count == 1)).sum()
        )
        # Repair bandwidth: every decodable stripe with missing data reads k blocks.
        stripes_repaired = int((decodable & (missing_data_count > 0)).sum())
        blocks_read = stripes_repaired * self.k

        # Vulnerable data under minimal maintenance: only the missing *data*
        # blocks of decodable stripes are regenerated (data repairs are given
        # priority); missing parities stay missing, exactly like the AE
        # minimal-maintenance mode.  A data block is vulnerable when its
        # stripe's remaining missing blocks exhaust the erasure tolerance.
        parity_missing_count = unavailable[:, self.k :].sum(axis=1)
        residual_missing = np.where(decodable, parity_missing_count, missing_count)
        tolerance_left = self.m - residual_missing
        stripe_vulnerable = tolerance_left <= 0
        # Data present after repairs: originally available data plus the data
        # regenerated in decodable stripes.
        present_data = self.data_mask & (~data_unavailable | decodable[:, None])
        vulnerable = int((present_data & stripe_vulnerable[:, None]).sum())

        return StripeRepairOutcome(
            scheme=self.scheme,
            data_blocks=self._data_blocks,
            stripes=self.stripes,
            initially_missing_blocks=initially_missing_blocks,
            initially_missing_data=initially_missing_data,
            repaired_data=repaired_data,
            data_loss=data_loss,
            vulnerable_data=vulnerable,
            single_failure_repairs=single_failure_repairs,
            blocks_read_for_repair=blocks_read,
        )
