"""Vectorised availability model of RS(k, m) stripes (legacy shim).

.. deprecated::
    This module is kept for backwards compatibility.  Stripe populations are
    now simulated by :class:`repro.simulation.engine.StripeSimulation`, the
    scheme-agnostic engine's adapter for *any*
    :class:`~repro.codes.base.StripeCode` (Reed-Solomon, LRC, flat XOR,
    replication); :class:`RSStripeModel` is a thin shim over it that
    preserves the historical constructor and the ``run_repair(failed)`` ->
    :class:`StripeRepairOutcome` surface.  New code should use
    :class:`~repro.simulation.engine.SimulationEngine` with an ``rs-k-m``
    registry identifier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import Dict, List, Sequence

from repro.codes.base import StripeCode
from repro.codes.reed_solomon import ReedSolomonCode
from repro.core.xor import Payload, as_payload
from repro.exceptions import DecodingError, InvalidParametersError
from repro.simulation.engine import StripeSimulation

__all__ = ["RSStripeModel", "StripeRepairOutcome"]


class _ParityFreeStripes(StripeCode):
    """RS(k, 0) edge case of the legacy model: striping without parities.

    ``ReedSolomonCode`` requires at least one parity, but the historical
    ``RSStripeModel`` accepted ``m = 0`` (a stripe is decodable only when
    nothing is missing).  This degenerate code keeps that parameter space.
    """

    def __init__(self, k: int) -> None:
        super().__init__(k, 0)

    @property
    def name(self) -> str:
        return f"RS({self.k},0)"

    def encode(self, data_blocks: Sequence[Payload]) -> List[Payload]:
        self._normalise_stripe(data_blocks)
        return []

    def decode(self, available: Dict[int, Payload]) -> List[Payload]:
        if any(position not in available for position in range(self.k)):
            raise DecodingError("RS(k,0) has no redundancy to decode from")
        return [as_payload(available[position]) for position in range(self.k)]


@dataclass
class StripeRepairOutcome:
    """Per-disaster metrics of an RS stripe population."""

    scheme: str
    data_blocks: int
    stripes: int
    initially_missing_blocks: int
    initially_missing_data: int
    repaired_data: int
    data_loss: int
    vulnerable_data: int
    single_failure_repairs: int
    blocks_read_for_repair: int

    @property
    def single_failure_fraction(self) -> float:
        """Fraction of repaired data blocks that were their stripe's only failure."""
        if self.repaired_data == 0:
            return 0.0
        return self.single_failure_repairs / self.repaired_data


class RSStripeModel(StripeSimulation):
    """Availability-only model of RS(k, m) stripes (legacy shim).

    .. deprecated::
        Thin shim over :class:`~repro.simulation.engine.StripeSimulation`;
        kept so historical call sites (and their fixed-seed results) remain
        intact.  Prefer the scheme-agnostic
        :class:`~repro.simulation.engine.SimulationEngine`.
    """

    def __init__(
        self,
        k: int,
        m: int,
        data_blocks: int,
        location_count: int = 100,
        seed: int = 0,
    ) -> None:
        if k < 1 or m < 0:
            raise InvalidParametersError(f"invalid RS setting ({k},{m})")
        code = ReedSolomonCode(k, m) if m >= 1 else _ParityFreeStripes(k)
        super().__init__(
            code,
            data_blocks,
            location_count,
            seed,
            scheme_id=f"rs-{k}-{m}",
        )
        self.k = k
        self.m = m

    @property
    def scheme(self) -> str:
        return self.name

    def run_repair(self, failed_locations: np.ndarray) -> StripeRepairOutcome:
        """Apply a disaster and compute the paper's stripe metrics.

        Repair metrics assume data repairs are given priority (minimal
        maintenance), exactly like the historical model: vulnerability
        counts stripes whose residual missing blocks exhaust the erasure
        tolerance.
        """
        state = self.evaluate(failed_locations)
        repairable = state.decodable & (state.data_missing_count > 0)
        return StripeRepairOutcome(
            scheme=self.name,
            data_blocks=self.data_blocks,
            stripes=self.stripes,
            initially_missing_blocks=int(state.missing_count.sum()),
            initially_missing_data=int(state.data_missing_count.sum()),
            repaired_data=int(state.data_missing_count[state.decodable].sum()),
            data_loss=int(state.data_missing_count[~state.decodable].sum()),
            vulnerable_data=int(state.vulnerable_minimal.sum()),
            single_failure_repairs=int(state.single_failure.sum()),
            blocks_read_for_repair=int(state.stripe_reads[repairable].sum()),
        )
