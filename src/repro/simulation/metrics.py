"""Metric definitions and the analytic cost table (paper, Table IV).

The disaster experiments report four metrics:

* **data loss** -- data blocks whose location failed and whose repair failed
  (Fig. 11);
* **vulnerable data** -- data blocks left without any protecting redundancy
  after minimal-maintenance repairs (Fig. 12);
* **single-failure fraction** -- the share of repairs that were plain
  single-failure repairs (Fig. 13);
* **repair rounds** -- how many rounds the AE decoder needed (Table VI).

Scheme naming is unified with the :mod:`repro.schemes` registry: a scheme
specification is primarily a registry identifier string (``"ae-3-2-5"``,
``"rs-10-4"``, ``"lrc-azure"``, ``"rep-3"``, ``"xor-geo"``, ...), and
:func:`describe_scheme` / :func:`scheme_costs` resolve it through the
registry's :class:`~repro.schemes.base.SchemeCapabilities` instead of a
parallel hand-written cost table.  The legacy shorthand specs -- an
:class:`AEParameters` setting, an RS ``(k, m)`` tuple or a replication
factor ``int`` -- are still accepted and normalised by
:func:`scheme_id_for`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Union

from repro.codes.base import CodeCosts
from repro.core.parameters import AEParameters
from repro.exceptions import InvalidParametersError

#: A scheme specification: a registry identifier string, an AE setting, an
#: RS ``(k, m)`` pair, or a replication factor.
SchemeSpec = Union[str, AEParameters, tuple, int]


def scheme_id_for(spec: SchemeSpec) -> str:
    """Normalise any scheme specification to its registry identifier.

    ``"rs-10-4"`` stays as is; ``AEParameters.triple(2, 5)`` becomes
    ``"ae-3-2-5"``, ``(10, 4)`` becomes ``"rs-10-4"`` and ``3`` becomes
    ``"rep-3"``.
    """
    if isinstance(spec, str):
        return spec.strip().lower()
    if isinstance(spec, AEParameters):
        if spec.is_single:
            return "ae-1"
        return f"ae-{spec.alpha}-{spec.s}-{spec.p}"
    if isinstance(spec, tuple) and len(spec) == 2:
        k, m = spec
        if k < 1 or m < 0:
            raise InvalidParametersError(f"invalid RS spec {spec!r}")
        return f"rs-{k}-{m}"
    if isinstance(spec, int) and not isinstance(spec, bool):
        if spec < 2:
            raise InvalidParametersError("replication factor must be >= 2")
        return f"rep-{spec}"
    raise InvalidParametersError(f"unrecognised scheme specification {spec!r}")


@dataclass(frozen=True)
class SchemeDescription:
    """Uniform naming/cost description of every scheme in the evaluation."""

    name: str
    kind: str  # "ae", "rs", "lrc", "xor" or "replication"
    additional_storage_percent: float
    single_failure_cost: int
    scheme_id: str = ""

    def costs(self) -> CodeCosts:
        return CodeCosts(
            name=self.name,
            additional_storage_percent=self.additional_storage_percent,
            single_failure_cost=self.single_failure_cost,
        )


def describe_scheme(spec: SchemeSpec) -> SchemeDescription:
    """Build the Table IV row of one scheme specification.

    The description is resolved through the :mod:`repro.schemes` registry,
    so every registered family (including LRC and flat XOR) gets a row, and
    the analytic numbers are the same ``SchemeCapabilities`` the live
    :class:`~repro.system.service.StorageService` reports.
    """
    import repro.schemes as schemes

    scheme_id = scheme_id_for(spec)
    parts = scheme_id.split("-")
    if len(parts) == 3 and parts[0] == "rs" and parts[2] == "0" and parts[1].isdigit():
        # The legacy RS(k, 0) edge case (striping without parities), which
        # the registry cannot serve but the historical cost table described.
        k = int(parts[1])
        return SchemeDescription(
            name=f"RS({k},0)",
            kind="rs",
            additional_storage_percent=0.0,
            single_failure_cost=k,
            scheme_id=scheme_id,
        )
    capabilities = schemes.get(scheme_id, block_size=64).capabilities()
    return SchemeDescription(
        name=capabilities.name,
        kind=capabilities.kind,
        additional_storage_percent=capabilities.storage_overhead * 100.0,
        single_failure_cost=capabilities.single_failure_reads,
        scheme_id=scheme_id,
    )


#: The schemes of Table IV (replication rows beyond 2/3/4-way are trivial).
PAPER_SCHEMES: Sequence[SchemeSpec] = (
    "rs-10-4",
    "rs-8-2",
    "rs-5-5",
    "rs-4-12",
    "ae-1",
    "ae-2-2-5",
    "ae-3-2-5",
    "rep-2",
    "rep-3",
    "rep-4",
)


def scheme_costs(specs: Sequence[SchemeSpec] = PAPER_SCHEMES) -> List[Dict[str, object]]:
    """Table IV: additional storage and single-failure repair cost per scheme."""
    return [describe_scheme(spec).costs().as_row() for spec in specs]


@dataclass
class DisasterMetrics:
    """All metrics of one (scheme, disaster size) cell of the evaluation."""

    scheme: str
    disaster_fraction: float
    data_blocks: int
    data_loss: int
    vulnerable_data: int
    repair_rounds: int = 0
    single_failure_fraction: float = 0.0
    repaired_data: int = 0
    blocks_read: int = 0
    #: Data blocks repairable but left missing because the maintenance
    #: budget ran out -- reported separately from loss.
    deferred_data: int = 0
    #: Origin of a topology-targeted disaster ("site:0", "rack:eu/1");
    #: empty for randomly sampled disasters.
    label: str = ""

    @property
    def data_loss_fraction(self) -> float:
        return self.data_loss / self.data_blocks if self.data_blocks else 0.0

    @property
    def vulnerable_fraction(self) -> float:
        return self.vulnerable_data / self.data_blocks if self.data_blocks else 0.0

    def as_row(self) -> Dict[str, object]:
        percent = int(round(self.disaster_fraction * 100))
        row = {
            "scheme": self.scheme,
            "disaster (%)": f"{percent} ({self.label})" if self.label else percent,
            "data loss (blocks)": self.data_loss,
            "vulnerable data (%)": round(self.vulnerable_fraction * 100.0, 2),
            "repair rounds": self.repair_rounds,
            "single failures (%)": round(self.single_failure_fraction * 100.0, 1),
        }
        if self.deferred_data:
            row["deferred repairs (blocks)"] = self.deferred_data
        return row


def format_table(rows: Sequence[Dict[str, object]]) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    # Union of keys in first-seen order, so optional columns (e.g. deferred
    # repairs under a maintenance budget) appear even when absent from row 0.
    headers = list(dict.fromkeys(key for row in rows for key in row))
    widths = {
        header: max(len(str(header)), *(len(str(row.get(header, ""))) for row in rows))
        for header in headers
    }
    lines = [
        "  ".join(str(header).ljust(widths[header]) for header in headers),
        "  ".join("-" * widths[header] for header in headers),
    ]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(header, "")).ljust(widths[header]) for header in headers)
        )
    return "\n".join(lines)
