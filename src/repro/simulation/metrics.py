"""Metric definitions and the analytic cost table (paper, Table IV).

The disaster experiments report four metrics:

* **data loss** -- data blocks whose location failed and whose repair failed
  (Fig. 11);
* **vulnerable data** -- data blocks left without any protecting redundancy
  after minimal-maintenance repairs (Fig. 12);
* **single-failure fraction** -- the share of repairs that were plain
  single-failure repairs (Fig. 13);
* **repair rounds** -- how many rounds the AE decoder needed (Table VI).

``scheme_costs`` reproduces the analytic rows of Table IV (additional storage
and single-failure repair cost per scheme).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.codes.base import CodeCosts
from repro.core.parameters import AEParameters
from repro.exceptions import InvalidParametersError

#: A scheme specification: an AE setting, an RS (k, m) pair, or a replication factor.
SchemeSpec = Union[AEParameters, tuple, int]


@dataclass(frozen=True)
class SchemeDescription:
    """Uniform naming/cost description of every scheme in the evaluation."""

    name: str
    kind: str  # "ae", "rs" or "replication"
    additional_storage_percent: float
    single_failure_cost: int

    def costs(self) -> CodeCosts:
        return CodeCosts(
            name=self.name,
            additional_storage_percent=self.additional_storage_percent,
            single_failure_cost=self.single_failure_cost,
        )


def describe_scheme(spec: SchemeSpec) -> SchemeDescription:
    """Build the Table IV row of one scheme specification."""
    if isinstance(spec, AEParameters):
        return SchemeDescription(
            name=spec.spec(),
            kind="ae",
            additional_storage_percent=spec.alpha * 100.0,
            single_failure_cost=spec.single_failure_cost,
        )
    if isinstance(spec, tuple) and len(spec) == 2:
        k, m = spec
        if k < 1 or m < 0:
            raise InvalidParametersError(f"invalid RS spec {spec!r}")
        return SchemeDescription(
            name=f"RS({k},{m})",
            kind="rs",
            additional_storage_percent=m / k * 100.0,
            single_failure_cost=k,
        )
    if isinstance(spec, int):
        if spec < 2:
            raise InvalidParametersError("replication factor must be >= 2")
        return SchemeDescription(
            name=f"{spec}-way replication",
            kind="replication",
            additional_storage_percent=(spec - 1) * 100.0,
            single_failure_cost=1,
        )
    raise InvalidParametersError(f"unrecognised scheme specification {spec!r}")


#: The schemes of Table IV (replication rows beyond 2/3/4-way are trivial).
PAPER_SCHEMES: Sequence[SchemeSpec] = (
    (10, 4),
    (8, 2),
    (5, 5),
    (4, 12),
    AEParameters.single(),
    AEParameters.double(2, 5),
    AEParameters.triple(2, 5),
    2,
    3,
    4,
)


def scheme_costs(specs: Sequence[SchemeSpec] = PAPER_SCHEMES) -> List[Dict[str, object]]:
    """Table IV: additional storage and single-failure repair cost per scheme."""
    return [describe_scheme(spec).costs().as_row() for spec in specs]


@dataclass
class DisasterMetrics:
    """All metrics of one (scheme, disaster size) cell of the evaluation."""

    scheme: str
    disaster_fraction: float
    data_blocks: int
    data_loss: int
    vulnerable_data: int
    repair_rounds: int = 0
    single_failure_fraction: float = 0.0
    repaired_data: int = 0
    blocks_read: int = 0

    @property
    def data_loss_fraction(self) -> float:
        return self.data_loss / self.data_blocks if self.data_blocks else 0.0

    @property
    def vulnerable_fraction(self) -> float:
        return self.vulnerable_data / self.data_blocks if self.data_blocks else 0.0

    def as_row(self) -> Dict[str, object]:
        return {
            "scheme": self.scheme,
            "disaster (%)": int(round(self.disaster_fraction * 100)),
            "data loss (blocks)": self.data_loss,
            "vulnerable data (%)": round(self.vulnerable_fraction * 100.0, 2),
            "repair rounds": self.repair_rounds,
            "single failures (%)": round(self.single_failure_fraction * 100.0, 1),
        }


def format_table(rows: Sequence[Dict[str, object]]) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    headers = list(rows[0].keys())
    widths = {
        header: max(len(str(header)), *(len(str(row.get(header, ""))) for row in rows))
        for header in headers
    }
    lines = [
        "  ".join(str(header).ljust(widths[header]) for header in headers),
        "  ".join("-" * widths[header] for header in headers),
    ]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(header, "")).ljust(widths[header]) for header in headers)
        )
    return "\n".join(lines)
