"""Pluggable storage backends: where a location's block payloads live.

A :class:`~repro.storage.block_store.BlockStore` models *one* storage
location of the paper's evaluation (a disk, a server, a peer).  Which medium
actually holds the payload bytes is delegated to a :class:`StorageBackend`,
resolved from a string spec through the registry in this module::

    from repro.storage import backends

    backend = backends.get("memory")                       # Python dict
    backend = backends.get("disk", root="/data/loc-0")     # one file per block
    backend = backends.get("segment", root="/data/loc-0")  # append-only log

Three built-in backends cover the durability spectrum:

* :class:`MemoryBackend` -- the historical behaviour: payloads in a dict,
  gone at process exit.  Zero IO cost; the default for simulations.
* :class:`DiskBackend` -- one file per block under a root directory.  Writes
  are atomic (temp file + ``os.replace``) and optionally fsynced, so a crash
  never leaves a torn block.  Reopening the root recovers every block.
* :class:`SegmentLogBackend` -- blocks appended to capped segment files with
  an in-RAM offset index, the classic log-structured layout (one sequential
  write per put, no per-block file overhead).  Deletes append tombstones;
  segments are compacted once the dead-byte ratio passes a threshold.
  Reopening rescans the segments and rebuilds the index, stopping cleanly at
  a torn tail record (crash safety).

Backends are keyed by **block identifiers** (:class:`~repro.core.blocks.DataId`,
:class:`~repro.core.blocks.ParityId`, stripe ids, ...).  Persistent backends
serialise them with :func:`encode_block_id` / :func:`decode_block_id`, which
is also what the service manifest uses, so an on-disk layout is self-describing:
listing a backend is enough to rebuild a cluster's placement directory.

New media (S3, a key-value store, ...) plug in with :func:`register`.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import zlib
from abc import ABC, abstractmethod
from typing import BinaryIO, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.xor import Payload
from repro.exceptions import InvalidParametersError, UnknownBlockError

__all__ = [
    "DiskBackend",
    "MemoryBackend",
    "SegmentLogBackend",
    "StorageBackend",
    "available",
    "decode_block_id",
    "encode_block_id",
    "get",
    "register",
    "write_json",
]


# ----------------------------------------------------------------------
# Block-id codec
# ----------------------------------------------------------------------
def encode_block_id(block_id: object) -> str:
    """Serialise a block identifier to a stable, filesystem-safe string.

    ``d-<index>`` for data blocks, ``p-<index>-<class>`` for lattice
    parities, ``s-<stripe>-<position>`` for stripe blocks.  The inverse is
    :func:`decode_block_id`; persistent backends and the service manifest
    share this vocabulary.
    """
    from repro.core.blocks import DataId, ParityId

    if isinstance(block_id, DataId):
        return f"d-{block_id.index}"
    if isinstance(block_id, ParityId):
        return f"p-{block_id.index}-{block_id.strand_class.value}"
    # Imported lazily: repro.schemes sits above repro.storage in the layering.
    from repro.schemes.stripe import StripeBlockId

    if isinstance(block_id, StripeBlockId):
        return f"s-{block_id.stripe}-{block_id.position}"
    raise InvalidParametersError(
        f"cannot serialise block id {block_id!r} of type {type(block_id).__name__}"
    )


def decode_block_id(key: str) -> object:
    """Inverse of :func:`encode_block_id`."""
    from repro.core.blocks import DataId, ParityId
    from repro.core.parameters import StrandClass

    parts = key.split("-")
    try:
        if parts[0] == "d" and len(parts) == 2:
            return DataId(int(parts[1]))
        if parts[0] == "p" and len(parts) == 3:
            return ParityId(int(parts[1]), StrandClass(parts[2]))
        if parts[0] == "s" and len(parts) == 3:
            from repro.schemes.stripe import StripeBlockId

            return StripeBlockId(int(parts[1]), int(parts[2]))
    except ValueError as exc:
        raise InvalidParametersError(f"malformed block key {key!r}: {exc}") from exc
    raise InvalidParametersError(f"malformed block key {key!r}")


def _as_bytes_payload(payload: Payload) -> np.ndarray:
    if (
        isinstance(payload, np.ndarray)
        and payload.dtype == np.uint8
        and payload.ndim == 1
    ):
        return payload
    from repro.core.xor import as_payload

    return as_payload(payload)


# ----------------------------------------------------------------------
# The protocol
# ----------------------------------------------------------------------
class StorageBackend(ABC):
    """Payload storage for one location: a (block id -> bytes) medium.

    The backend is deliberately dumb: no availability flag, no capacity, no
    counters -- those belong to :class:`~repro.storage.block_store.BlockStore`,
    which stays the single model of a *location*.  A backend only stores,
    retrieves, deletes and enumerates payloads, plus a small JSON metadata
    side-channel (:meth:`load_meta` / :meth:`save_meta`) that persistent
    backends use to carry location counters across a close/reopen.
    """

    #: Registry name of the backend family (``"memory"``, ``"disk"``, ...).
    name: str = "abstract"
    #: Whether payloads survive :meth:`close` + re-instantiation on the same root.
    persistent: bool = False

    @abstractmethod
    def put(self, block_id: object, payload: Payload) -> None:
        """Store (or overwrite) one payload."""

    def put_many(self, items: Iterable[Tuple[object, Payload]]) -> int:
        """Store a batch; returns the number of payloads written."""
        count = 0
        for block_id, payload in items:
            self.put(block_id, payload)
            count += 1
        return count

    @abstractmethod
    def get(self, block_id: object) -> Payload:
        """Return a stored payload; raises :class:`KeyError` when absent."""

    @abstractmethod
    def delete(self, block_id: object) -> None:
        """Remove a payload; raises :class:`KeyError` when absent."""

    @abstractmethod
    def clear(self) -> None:
        """Drop every payload (the destructive ``wipe`` of a location)."""

    @abstractmethod
    def scan(self) -> Iterator[Tuple[object, int]]:
        """Yield ``(block_id, payload_size)`` for every stored block.

        Used once at open time to rebuild the location index (and, one level
        up, the cluster's placement directory) from pre-existing data.
        """

    def load_meta(self) -> Dict[str, object]:
        """Metadata persisted by :meth:`save_meta` (empty for volatile backends)."""
        return {}

    def save_meta(self, meta: Dict[str, object]) -> None:
        """Persist a small JSON-serialisable metadata dict (no-op if volatile)."""

    def flush(self) -> None:
        """Push buffered writes to the medium."""

    def close(self) -> None:
        """Release file handles; the backend must not be used afterwards."""


# ----------------------------------------------------------------------
# Memory
# ----------------------------------------------------------------------
class MemoryBackend(StorageBackend):
    """The historical in-process behaviour: payloads in a Python dict."""

    name = "memory"
    persistent = False

    def __init__(self, root: Optional[str] = None) -> None:
        # ``root`` is accepted (and ignored) so every backend shares one
        # factory signature.
        self._payloads: Dict[object, Payload] = {}

    def put(self, block_id: object, payload: Payload) -> None:
        self._payloads[block_id] = _as_bytes_payload(payload)

    def put_many(self, items: Iterable[Tuple[object, Payload]]) -> int:
        staged = {
            block_id: _as_bytes_payload(payload) for block_id, payload in items
        }
        self._payloads.update(staged)
        return len(staged)

    def get(self, block_id: object) -> Payload:
        return self._payloads[block_id]

    def delete(self, block_id: object) -> None:
        del self._payloads[block_id]

    def clear(self) -> None:
        self._payloads.clear()

    def scan(self) -> Iterator[Tuple[object, int]]:
        for block_id, payload in self._payloads.items():
            yield block_id, int(payload.size)


# ----------------------------------------------------------------------
# Disk: one file per block
# ----------------------------------------------------------------------
class DiskBackend(StorageBackend):
    """One file per block under ``<root>/blocks/``.

    Writes go to a temp file in the same directory and are published with
    ``os.replace``, so a reader (or a reopen after a crash) never observes a
    torn block: either the old payload, the new payload, or nothing.  With
    ``fsync=True`` the file is fsynced before the rename, trading write
    latency for power-loss durability.
    """

    name = "disk"
    persistent = True

    def __init__(self, root: str, fsync: bool = False) -> None:
        if not root:
            raise InvalidParametersError("the disk backend needs a root directory")
        self._root = root
        self._blocks_dir = os.path.join(root, "blocks")
        self._fsync = bool(fsync)
        os.makedirs(self._blocks_dir, exist_ok=True)

    @property
    def root(self) -> str:
        return self._root

    def _path(self, block_id: object) -> str:
        return os.path.join(self._blocks_dir, encode_block_id(block_id))

    def put(self, block_id: object, payload: Payload) -> None:
        data = _as_bytes_payload(payload)
        path = self._path(block_id)
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(data.tobytes())
            if self._fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
        if self._fsync:
            # The rename itself must reach the disk, not just the file data.
            _fsync_dir(self._blocks_dir)

    def get(self, block_id: object) -> Payload:
        try:
            with open(self._path(block_id), "rb") as handle:
                return np.frombuffer(handle.read(), dtype=np.uint8)
        except FileNotFoundError:
            raise KeyError(block_id) from None

    def delete(self, block_id: object) -> None:
        try:
            os.remove(self._path(block_id))
        except FileNotFoundError:
            raise KeyError(block_id) from None

    def clear(self) -> None:
        # Materialise the listing first: unlinking while a scandir iterator
        # is live is unspecified and can skip entries on some filesystems.
        for entry in list(os.scandir(self._blocks_dir)):
            os.remove(entry.path)

    def scan(self) -> Iterator[Tuple[object, int]]:
        for entry in sorted(os.scandir(self._blocks_dir), key=lambda e: e.name):
            if entry.name.endswith(".tmp"):
                # A write that never committed; drop the orphan.
                os.remove(entry.path)
                continue
            yield decode_block_id(entry.name), entry.stat().st_size

    def load_meta(self) -> Dict[str, object]:
        return _read_meta(os.path.join(self._root, "meta.json"))

    def save_meta(self, meta: Dict[str, object]) -> None:
        _write_meta(os.path.join(self._root, "meta.json"), meta)


# ----------------------------------------------------------------------
# Segment log
# ----------------------------------------------------------------------
#: Per-record header: magic, key length, payload length (-1 = tombstone),
#: CRC32 of key + payload bytes.
_RECORD_HEADER = struct.Struct("<4sIiI")
_RECORD_MAGIC = b"RSG1"

#: Default cap on one segment file (1 MiB keeps tests fast; production roots
#: would use tens or hundreds of MiB).
DEFAULT_SEGMENT_BYTES = 1 << 20


class SegmentLogBackend(StorageBackend):
    """Append-only segment files with an in-RAM offset index.

    Every ``put`` appends one record (header + key + payload) to the active
    segment; when the active segment passes ``segment_bytes`` it is sealed
    and a new one is started.  ``delete`` appends a tombstone.  The index
    maps each live block id to ``(segment, offset, length)``, so a read is
    one ``seek`` + one ``read``.

    Reopening the root rescans the segments in order and rebuilds the index.
    The scan validates each record's magic and CRC and stops at the first
    torn record of the final segment, truncating the garbage tail -- exactly
    the state after a crash mid-append: every fully written block survives,
    the half-written one is discarded.

    Deleted and overwritten records leave dead bytes behind; once they exceed
    ``compact_ratio`` of the log, :meth:`compact` rewrites live records into
    fresh segments and removes the old files.
    """

    name = "segment"
    persistent = True

    def __init__(
        self,
        root: str,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        compact_ratio: float = 0.5,
        fsync: bool = False,
        auto_compact: bool = True,
    ) -> None:
        if not root:
            raise InvalidParametersError("the segment backend needs a root directory")
        if segment_bytes < _RECORD_HEADER.size + 1:
            raise InvalidParametersError("segment_bytes is too small for one record")
        self._root = root
        self._dir = os.path.join(root, "segments")
        self._segment_bytes = int(segment_bytes)
        self._compact_ratio = float(compact_ratio)
        self._fsync = bool(fsync)
        self._auto_compact = bool(auto_compact)
        os.makedirs(self._dir, exist_ok=True)
        #: block id -> (segment index, payload offset, payload length)
        self._index: Dict[object, Tuple[int, int, int]] = {}
        self._readers: Dict[int, object] = {}
        #: segment index -> (read-only mmap, mapped size); reads are served
        #: as zero-copy numpy views over these maps.
        self._maps: Dict[int, Tuple[mmap.mmap, int]] = {}
        self._live_bytes = 0
        self._total_bytes = 0
        self._active = -1
        self._writer = None
        self._recover()

    # -- open / recovery ------------------------------------------------
    def _segment_path(self, segment: int) -> str:
        return os.path.join(self._dir, f"seg-{segment:08d}.log")

    def _segments_on_disk(self) -> List[int]:
        numbers = []
        for entry in os.scandir(self._dir):
            if entry.name.startswith("seg-") and entry.name.endswith(".log"):
                numbers.append(int(entry.name[4:-4]))
        return sorted(numbers)

    def _recover(self) -> None:
        """Rebuild the index by scanning every segment (crash-safe reopen)."""
        segments = self._segments_on_disk()
        for position, segment in enumerate(segments):
            valid_end = self._scan_segment(segment)
            if position == len(segments) - 1 and valid_end is not None:
                # Torn tail record after a crash: drop the garbage so future
                # appends produce a log that rescans cleanly.
                with open(self._segment_path(segment), "r+b") as handle:
                    handle.truncate(valid_end)
        self._active = segments[-1] if segments else 0
        self._open_writer()
        self._total_bytes = sum(
            os.path.getsize(self._segment_path(segment)) for segment in segments
        )

    def _scan_segment(self, segment: int) -> Optional[int]:
        """Index one segment; returns the truncation offset on a torn tail."""
        path = self._segment_path(segment)
        with open(path, "rb") as handle:
            offset = 0
            while True:
                header = handle.read(_RECORD_HEADER.size)
                if not header:
                    return None
                if len(header) < _RECORD_HEADER.size:
                    return offset
                magic, key_len, payload_len, crc = _RECORD_HEADER.unpack(header)
                if magic != _RECORD_MAGIC:
                    return offset
                tombstone = payload_len < 0
                body_len = key_len + (0 if tombstone else payload_len)
                body = handle.read(body_len)
                if len(body) < body_len:
                    return offset
                if zlib.crc32(body) != crc:
                    return offset
                key = body[:key_len].decode("ascii")
                block_id = decode_block_id(key)
                record_len = _RECORD_HEADER.size + body_len
                if tombstone:
                    previous = self._index.pop(block_id, None)
                    if previous is not None:
                        self._live_bytes -= previous[2]
                else:
                    previous = self._index.get(block_id)
                    if previous is not None:
                        self._live_bytes -= previous[2]
                    payload_offset = offset + _RECORD_HEADER.size + key_len
                    self._index[block_id] = (segment, payload_offset, payload_len)
                    self._live_bytes += payload_len
                offset += record_len

    def _open_writer(self) -> None:
        if self._writer is not None:
            self._writer.close()
        self._writer = open(self._segment_path(self._active), "ab")

    def _reader(self, segment: int) -> BinaryIO:
        handle = self._readers.get(segment)
        if handle is None:
            handle = open(self._segment_path(segment), "rb")
            self._readers[segment] = handle
        return handle

    # -- write path -----------------------------------------------------
    def _append(self, block_id: object, payload: Optional[np.ndarray]) -> None:
        key = encode_block_id(block_id).encode("ascii")
        body = key + (payload.tobytes() if payload is not None else b"")
        payload_len = int(payload.size) if payload is not None else -1
        header = _RECORD_HEADER.pack(
            _RECORD_MAGIC, len(key), payload_len, zlib.crc32(body)
        )
        writer = self._writer
        offset = writer.tell()
        writer.write(header)
        writer.write(body)
        record_len = len(header) + len(body)
        self._total_bytes += record_len
        if payload is not None:
            previous = self._index.get(block_id)
            if previous is not None:
                self._live_bytes -= previous[2]
            self._index[block_id] = (
                self._active,
                offset + len(header) + len(key),
                payload_len,
            )
            self._live_bytes += payload_len
        if offset + record_len >= self._segment_bytes:
            self._roll()

    def _roll(self) -> None:
        self.flush()
        self._active += 1
        self._open_writer()
        if self._fsync:
            _fsync_dir(self._dir)  # persist the new segment's directory entry

    def put(self, block_id: object, payload: Payload) -> None:
        data = _as_bytes_payload(payload)
        self._append(block_id, data)
        self.flush()
        self._maybe_compact()

    def put_many(self, items: Iterable[Tuple[object, Payload]]) -> int:
        count = 0
        for block_id, payload in items:
            self._append(block_id, _as_bytes_payload(payload))
            count += 1
        self.flush()
        self._maybe_compact()
        return count

    def delete(self, block_id: object) -> None:
        previous = self._index.get(block_id)
        if previous is None:
            raise KeyError(block_id)
        self._append(block_id, None)
        self._index.pop(block_id, None)
        self._live_bytes -= previous[2]
        self.flush()
        self._maybe_compact()

    def clear(self) -> None:
        for handle in self._readers.values():
            handle.close()
        self._readers.clear()
        # Maps are dropped, not closed: live zero-copy views may still
        # reference them.  Unlinking a mapped file is safe on POSIX.
        self._maps = {}
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        for segment in self._segments_on_disk():
            os.remove(self._segment_path(segment))
        self._index.clear()
        self._live_bytes = 0
        self._total_bytes = 0
        self._active = 0
        self._open_writer()

    # -- read path ------------------------------------------------------
    def _mapped(self, segment: int, end_needed: int) -> Optional[mmap.mmap]:
        """A read-only memory map of the segment covering ``end_needed`` bytes.

        The active segment keeps growing, so its map is re-created whenever a
        requested record lies beyond the mapped size.  A superseded map is
        *dropped*, never closed: numpy views handed out by :meth:`get` may
        still reference its buffer (``mmap.close`` with live exports raises
        ``BufferError``); the map is unmapped when the last view dies.
        """
        entry = self._maps.get(segment)
        if entry is not None and entry[1] >= end_needed:
            return entry[0]
        if segment == self._active:
            # The active segment's appends may still sit in the writer buffer.
            self._writer.flush()
        path = self._segment_path(segment)
        try:
            size = os.path.getsize(path)
        except OSError:
            return None
        if size == 0 or size < end_needed:
            return None
        with open(path, "rb") as handle:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        self._maps[segment] = (mapped, size)
        return mapped

    def get(self, block_id: object) -> Payload:
        entry = self._index.get(block_id)
        if entry is None:
            raise KeyError(block_id)
        segment, offset, length = entry
        mapped = self._mapped(segment, offset + length)
        if mapped is not None:
            # Zero-copy: a read-only uint8 view straight over the mapped
            # segment -- the payload reaches the XOR kernels without an
            # intermediate copy (repair kernels gather into fresh matrices
            # and never write into their sources).
            return np.frombuffer(mapped, dtype=np.uint8, count=length, offset=offset)
        if segment == self._active:
            # The active segment's appends may still sit in the writer buffer.
            self._writer.flush()
        handle = self._reader(segment)
        handle.seek(offset)
        return np.frombuffer(handle.read(length), dtype=np.uint8)

    def scan(self) -> Iterator[Tuple[object, int]]:
        for block_id, (_, _, length) in self._index.items():
            yield block_id, length

    # -- compaction -----------------------------------------------------
    @property
    def dead_bytes(self) -> int:
        """Bytes held by deleted or overwritten records (reclaimed by compaction)."""
        return max(0, self._total_bytes - self._live_bytes - self._overhead_bytes())

    def _overhead_bytes(self) -> int:
        # Header + key bytes of the live records (an estimate: keys are short).
        return len(self._index) * (_RECORD_HEADER.size + 8)

    @property
    def segment_count(self) -> int:
        return len(self._segments_on_disk())

    def _maybe_compact(self) -> None:
        if not self._auto_compact or self._total_bytes == 0:
            return
        # dead_bytes excludes the live records' header/key overhead, which
        # compaction cannot reduce -- comparing raw total-live would retrigger
        # a full-log rewrite on every put for small blocks.
        if self.dead_bytes > self._compact_ratio * self._total_bytes:
            self.compact()

    def compact(self) -> None:
        """Rewrite live records into fresh segments and drop the old files.

        Live payloads are streamed one record at a time from the old
        segments into the new log (never materialised together), so
        compaction of an arbitrarily large location runs in constant memory.
        A crash mid-compact is safe: the rescan on reopen replays segments
        in order, so the new (higher-numbered) records win and leftover old
        segments are merely re-compacted later.
        """
        self.flush()
        old_segments = self._segments_on_disk()
        entries = list(self._index.items())  # metadata only, not payloads
        self._writer.close()
        self._active = (old_segments[-1] + 1) if old_segments else 0
        self._open_writer()
        self._index = {}
        self._live_bytes = 0
        self._total_bytes = 0
        for block_id, (segment, offset, length) in entries:
            handle = self._reader(segment)
            handle.seek(offset)
            payload = np.frombuffer(handle.read(length), dtype=np.uint8)
            self._append(block_id, payload)
        self.flush()
        for handle in self._readers.values():
            handle.close()
        self._readers.clear()
        self._maps = {}  # dropped, not closed: views may outlive compaction
        for segment in old_segments:
            os.remove(self._segment_path(segment))

    # -- metadata / lifecycle -------------------------------------------
    def load_meta(self) -> Dict[str, object]:
        return _read_meta(os.path.join(self._root, "meta.json"))

    def save_meta(self, meta: Dict[str, object]) -> None:
        _write_meta(os.path.join(self._root, "meta.json"), meta)

    def flush(self) -> None:
        if self._writer is not None:
            self._writer.flush()
            if self._fsync:
                os.fsync(self._writer.fileno())

    def close(self) -> None:
        self.flush()
        for handle in self._readers.values():
            handle.close()
        self._readers.clear()
        self._maps = {}  # dropped, not closed: callers may hold live views
        if self._writer is not None:
            self._writer.close()
            self._writer = None


# ----------------------------------------------------------------------
# Metadata helpers (shared by the persistent backends and the service
# manifest in :mod:`repro.system.service`)
# ----------------------------------------------------------------------
def _fsync_dir(path: str) -> None:
    """fsync a directory so a just-published rename survives power loss."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_json(path: str, payload: Dict[str, object], fsync: bool = False) -> None:
    """Atomically publish a JSON document (temp file + ``os.replace``).

    With ``fsync=True`` the temp file is flushed to stable storage before
    the rename and the containing directory is fsynced after it, so a power
    loss can neither truncate the document nor lose the rename.
    """
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        if fsync:
            handle.flush()
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    if fsync:
        _fsync_dir(os.path.dirname(path) or ".")


def _read_meta(path: str) -> Dict[str, object]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        return {}
    except json.JSONDecodeError:
        # Counters are best-effort metadata: a torn meta file degrades to
        # fresh counters rather than an unopenable location.
        return {}


def _write_meta(path: str, meta: Dict[str, object]) -> None:
    write_json(path, meta)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
#: A factory builds a backend from ``(root, options)``.
BackendFactory = Callable[..., StorageBackend]

_BACKENDS: Dict[str, BackendFactory] = {}


def register(name: str, factory: BackendFactory) -> None:
    """Register a backend family under ``name`` (used by ``--backend``)."""
    _BACKENDS[name.lower()] = factory


def available() -> List[str]:
    """Registered backend names, sorted."""
    return sorted(_BACKENDS)


def get(spec: str, root: Optional[str] = None, **options: object) -> StorageBackend:
    """Resolve a backend spec to a fresh backend instance.

    ``spec`` is a registered name (``"memory"``, ``"disk"``, ``"segment"``).
    Persistent backends require ``root``; the memory backend ignores it.
    Extra keyword options are forwarded to the factory (``fsync=True``,
    ``segment_bytes=...``, ...).
    """
    name = spec.strip().lower()
    if name not in _BACKENDS:
        raise InvalidParametersError(
            f"unknown storage backend {spec!r}; available: " + ", ".join(available())
        )
    try:
        return _BACKENDS[name](root=root, **options)
    except TypeError as exc:
        raise InvalidParametersError(
            f"cannot build storage backend {spec!r}: {exc}"
        ) from exc


def _check_options(name: str, options: Dict[str, object], allowed: set) -> None:
    """Reject misspelled/unsupported factory options instead of dropping them."""
    unknown = set(options) - allowed
    if unknown:
        raise InvalidParametersError(
            f"unknown option(s) for backend {name!r}: {sorted(unknown)}; "
            f"allowed: {sorted(allowed) or 'none'}"
        )


def _memory_factory(root: Optional[str] = None, **options: object) -> StorageBackend:
    # ``fsync`` is accepted (and meaningless) so one config can name any
    # backend without tailoring its options.
    _check_options("memory", options, {"fsync"})
    return MemoryBackend()


def _disk_factory(root: Optional[str] = None, **options: object) -> StorageBackend:
    _check_options("disk", options, {"fsync"})
    if root is None:
        raise InvalidParametersError(
            "the 'disk' backend needs a root directory (data_dir / --data-dir)"
        )
    return DiskBackend(root, fsync=bool(options.get("fsync", False)))


def _segment_factory(root: Optional[str] = None, **options: object) -> StorageBackend:
    _check_options(
        "segment", options, {"segment_bytes", "compact_ratio", "fsync", "auto_compact"}
    )
    if root is None:
        raise InvalidParametersError(
            "the 'segment' backend needs a root directory (data_dir / --data-dir)"
        )
    return SegmentLogBackend(root, **options)


register("memory", _memory_factory)
register("disk", _disk_factory)
register("segment", _segment_factory)
