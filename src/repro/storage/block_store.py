"""A single storage location: an in-memory block store with an availability flag.

The paper's evaluation treats storage locations abstractly: a location is a
disk, a server or a peer; blocks are mapped to locations by a placement
policy; a disaster flips a set of locations to *unavailable* (paper,
Sec. V-C).  This class models one such location.  Payloads are kept in memory,
which is sufficient for the simulations and the examples while still
exercising the real encode/decode path.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.blocks import BlockId
from repro.core.xor import Payload, as_payload
from repro.exceptions import BlockUnavailableError, StorageFullError, UnknownBlockError


class BlockStore:
    """In-memory content store for one storage location."""

    def __init__(self, location_id: int, capacity_blocks: Optional[int] = None) -> None:
        self._location_id = location_id
        self._capacity = capacity_blocks
        self._blocks: Dict[BlockId, Payload] = {}
        self._available = True
        self._reads = 0
        self._writes = 0

    # ------------------------------------------------------------------
    # Identity and state
    # ------------------------------------------------------------------
    @property
    def location_id(self) -> int:
        return self._location_id

    @property
    def available(self) -> bool:
        """Whether the location currently serves requests."""
        return self._available

    @property
    def capacity_blocks(self) -> Optional[int]:
        return self._capacity

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    @property
    def bytes_stored(self) -> int:
        return sum(int(payload.size) for payload in self._blocks.values())

    @property
    def read_count(self) -> int:
        return self._reads

    @property
    def write_count(self) -> int:
        return self._writes

    def fail(self) -> None:
        """Mark the location unavailable (disaster / crash / departure)."""
        self._available = False

    def restore(self) -> None:
        """Bring the location back online with its stored content intact."""
        self._available = True

    def wipe(self) -> None:
        """Simulate a destructive failure: content is lost, location stays down."""
        self._blocks.clear()
        self._available = False

    # ------------------------------------------------------------------
    # Block operations
    # ------------------------------------------------------------------
    def put(self, block_id: BlockId, payload: Payload) -> None:
        if not self._available:
            raise BlockUnavailableError(
                f"location {self._location_id} is unavailable for writes"
            )
        if (
            self._capacity is not None
            and block_id not in self._blocks
            and len(self._blocks) >= self._capacity
        ):
            raise StorageFullError(
                f"location {self._location_id} is full ({self._capacity} blocks)"
            )
        self._blocks[block_id] = as_payload(payload)
        self._writes += 1

    def put_many(self, items: Iterable[Tuple[BlockId, Payload]]) -> int:
        """Store a batch of blocks in one call, returning how many were stored.

        The availability and capacity checks run once for the whole batch
        (all-or-nothing: nothing is stored when the batch would overflow the
        capacity), and the payload dictionary is updated in bulk.  This is the
        amortised write path of the batched ingest pipeline.
        """
        if not self._available:
            raise BlockUnavailableError(
                f"location {self._location_id} is unavailable for writes"
            )
        staged = {
            block_id: (
                payload
                if isinstance(payload, np.ndarray)
                and payload.dtype == np.uint8
                and payload.ndim == 1
                else as_payload(payload)
            )
            for block_id, payload in items
        }
        if self._capacity is not None:
            new_blocks = sum(1 for block_id in staged if block_id not in self._blocks)
            if len(self._blocks) + new_blocks > self._capacity:
                raise StorageFullError(
                    f"location {self._location_id} cannot absorb {new_blocks} new "
                    f"blocks (capacity {self._capacity}, holding {len(self._blocks)})"
                )
        self._blocks.update(staged)
        self._writes += len(staged)
        return len(staged)

    def get(self, block_id: BlockId) -> Payload:
        if not self._available:
            raise BlockUnavailableError(
                f"location {self._location_id} is unavailable for reads"
            )
        if block_id not in self._blocks:
            raise UnknownBlockError(
                f"block {block_id!r} is not stored at location {self._location_id}"
            )
        self._reads += 1
        return self._blocks[block_id]

    def try_get(self, block_id: BlockId) -> Optional[Payload]:
        """Like :meth:`get` but returns ``None`` instead of raising."""
        if not self._available or block_id not in self._blocks:
            return None
        self._reads += 1
        return self._blocks[block_id]

    def get_many(self, block_ids: Iterable[BlockId]) -> List[Payload]:
        """Read a batch of blocks with one availability check.

        Raises on the first unknown block; the read counter advances by the
        number of payloads returned.
        """
        if not self._available:
            raise BlockUnavailableError(
                f"location {self._location_id} is unavailable for reads"
            )
        payloads: List[Payload] = []
        for block_id in block_ids:
            if block_id not in self._blocks:
                raise UnknownBlockError(
                    f"block {block_id!r} is not stored at location {self._location_id}"
                )
            payloads.append(self._blocks[block_id])
        self._reads += len(payloads)
        return payloads

    def delete(self, block_id: BlockId) -> None:
        if block_id not in self._blocks:
            raise UnknownBlockError(
                f"block {block_id!r} is not stored at location {self._location_id}"
            )
        del self._blocks[block_id]

    def contains(self, block_id: BlockId) -> bool:
        """True when the block is physically present (even if unavailable)."""
        return block_id in self._blocks

    def holds(self, block_id: BlockId) -> bool:
        """True when the block is present *and* the location is available."""
        return self._available and block_id in self._blocks

    def block_ids(self) -> Iterator[BlockId]:
        return iter(list(self._blocks.keys()))

    def __len__(self) -> int:
        return len(self._blocks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "up" if self._available else "down"
        return f"BlockStore(location={self._location_id}, blocks={len(self._blocks)}, {state})"
