"""A single storage location: availability, capacity, counters and a backend.

The paper's evaluation treats storage locations abstractly: a location is a
disk, a server or a peer; blocks are mapped to locations by a placement
policy; a disaster flips a set of locations to *unavailable* (paper,
Sec. V-C).  This class models one such location.

Where the payload bytes live is pluggable: a
:class:`~repro.storage.backends.StorageBackend` (memory / disk / segment log,
see :mod:`repro.storage.backends`) holds the content, while this class keeps
everything that makes the location a *location* -- the availability flag, the
capacity limit, read/write accounting, and a small write-through LRU read
cache that keeps repeated reads on persistent backends close to memory speed.
Opening a store over a persistent backend with pre-existing data rebuilds the
block index (and restores the persisted counters), so a location survives a
process restart with its content intact.

Block operations are thread-safe: one lock per store guards the block
index, the LRU cache (an ``OrderedDict`` whose re-linking is *not* atomic
under concurrent mutation) and the read/write/hit/miss counters, so the
concurrent front-end (:mod:`repro.system.frontend`) can drive reads during
repair without corrupting the cache.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.core.blocks import BlockId
from repro.core.xor import Payload, as_payload
from repro.exceptions import BlockUnavailableError, StorageFullError, UnknownBlockError
from repro.storage import backends as _backends
from repro.storage.backends import MemoryBackend, StorageBackend

#: Default LRU read-cache size (in blocks) for persistent backends; volatile
#: backends default to no cache (a dict lookup needs no caching).
DEFAULT_CACHE_BLOCKS = 1024


class BlockStore:
    """Content store for one storage location over a pluggable backend."""

    def __init__(
        self,
        location_id: int,
        capacity_blocks: Optional[int] = None,
        backend: Optional[Union[str, StorageBackend]] = None,
        cache_blocks: Optional[int] = None,
    ) -> None:
        self._location_id = location_id
        self._capacity = capacity_blocks
        if backend is None:
            backend = MemoryBackend()
        elif isinstance(backend, str):
            backend = _backends.get(backend)
        self._backend = backend
        if cache_blocks is None:
            cache_blocks = DEFAULT_CACHE_BLOCKS if backend.persistent else 0
        self._cache_blocks = max(0, int(cache_blocks))
        self._cache: "OrderedDict[BlockId, Payload]" = OrderedDict()
        self._cache_hits = 0
        self._cache_misses = 0
        # Guards the index, the cache and the counters (reentrant: put_many
        # and wipe call helpers that also take it).
        self._lock = threading.RLock()
        self._available = True
        # Index of stored blocks (id -> payload size): membership, capacity
        # and byte accounting without touching the backend medium.
        self._sizes: Dict[BlockId, int] = {}
        self._bytes = 0
        for block_id, size in backend.scan():
            self._sizes[block_id] = size
            self._bytes += size
        meta = backend.load_meta()
        self._reads = int(meta.get("reads", 0))
        self._writes = int(meta.get("writes", 0))

    # ------------------------------------------------------------------
    # Identity and state
    # ------------------------------------------------------------------
    @property
    def location_id(self) -> int:
        return self._location_id

    @property
    def backend(self) -> StorageBackend:
        """The payload medium behind this location."""
        return self._backend

    @property
    def available(self) -> bool:
        """Whether the location currently serves requests."""
        return self._available

    @property
    def capacity_blocks(self) -> Optional[int]:
        return self._capacity

    @property
    def block_count(self) -> int:
        return len(self._sizes)

    @property
    def bytes_stored(self) -> int:
        return self._bytes

    @property
    def read_count(self) -> int:
        return self._reads

    @property
    def write_count(self) -> int:
        return self._writes

    @property
    def cache_hits(self) -> int:
        """Reads served by the LRU cache instead of the backend medium."""
        return self._cache_hits

    @property
    def cache_misses(self) -> int:
        """Reads that had to touch the backend medium."""
        return self._cache_misses

    def fail(self) -> None:
        """Mark the location unavailable (disaster / crash / departure)."""
        self._available = False

    def restore(self) -> None:
        """Bring the location back online with its stored content intact."""
        self._available = True

    def wipe(self) -> None:
        """Simulate a destructive failure: content is lost, location stays down."""
        with self._lock:
            self._backend.clear()
            self._sizes.clear()
            self._bytes = 0
            self._cache.clear()
            self._available = False

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _cache_store(self, block_id: BlockId, payload: Payload) -> None:
        cache = self._cache
        cache[block_id] = payload
        cache.move_to_end(block_id)
        while len(cache) > self._cache_blocks:
            cache.popitem(last=False)

    def _cached_read(self, block_id: BlockId) -> Payload:
        """Read through the LRU cache (the caller has checked membership)."""
        cache = self._cache
        payload = cache.get(block_id)
        if payload is not None:
            self._cache_hits += 1
            cache.move_to_end(block_id)
            return payload
        payload = self._backend.get(block_id)
        if self._cache_blocks:
            self._cache_misses += 1
            self._cache_store(block_id, payload)
        return payload

    # ------------------------------------------------------------------
    # Block operations
    # ------------------------------------------------------------------
    def put(self, block_id: BlockId, payload: Payload) -> None:
        if not self._available:
            raise BlockUnavailableError(
                f"location {self._location_id} is unavailable for writes"
            )
        payload = as_payload(payload)
        with self._lock:
            if (
                self._capacity is not None
                and block_id not in self._sizes
                and len(self._sizes) >= self._capacity
            ):
                raise StorageFullError(
                    f"location {self._location_id} is full ({self._capacity} blocks)"
                )
            self._backend.put(block_id, payload)
            self._bytes += int(payload.size) - self._sizes.get(block_id, 0)
            self._sizes[block_id] = int(payload.size)
            # Write-through coherence: refresh a cached entry, never insert
            # one (bulk ingest must not evict the hot read set).
            if block_id in self._cache:
                self._cache[block_id] = payload
            self._writes += 1

    def put_many(self, items: Iterable[Tuple[BlockId, Payload]]) -> int:
        """Store a batch of blocks in one call, returning how many were stored.

        The availability and capacity checks run once for the whole batch
        (all-or-nothing: nothing is stored when the batch would overflow the
        capacity), and the backend receives one bulk write.  This is the
        amortised write path of the batched ingest pipeline.
        """
        if not self._available:
            raise BlockUnavailableError(
                f"location {self._location_id} is unavailable for writes"
            )
        staged = {
            block_id: (
                payload
                if isinstance(payload, np.ndarray)
                and payload.dtype == np.uint8
                and payload.ndim == 1
                else as_payload(payload)
            )
            for block_id, payload in items
        }
        with self._lock:
            if self._capacity is not None:
                new_blocks = sum(
                    1 for block_id in staged if block_id not in self._sizes
                )
                if len(self._sizes) + new_blocks > self._capacity:
                    raise StorageFullError(
                        f"location {self._location_id} cannot absorb {new_blocks} new "
                        f"blocks (capacity {self._capacity}, holding {len(self._sizes)})"
                    )
            self._backend.put_many(staged.items())
            for block_id, payload in staged.items():
                self._bytes += int(payload.size) - self._sizes.get(block_id, 0)
                self._sizes[block_id] = int(payload.size)
                if block_id in self._cache:
                    self._cache[block_id] = payload
            self._writes += len(staged)
        return len(staged)

    def get(self, block_id: BlockId) -> Payload:
        if not self._available:
            raise BlockUnavailableError(
                f"location {self._location_id} is unavailable for reads"
            )
        with self._lock:
            if block_id not in self._sizes:
                raise UnknownBlockError(
                    f"block {block_id!r} is not stored at location {self._location_id}"
                )
            self._reads += 1
            return self._cached_read(block_id)

    def try_get(self, block_id: BlockId) -> Optional[Payload]:
        """Like :meth:`get` but returns ``None`` instead of raising."""
        if not self._available:
            return None
        with self._lock:
            if block_id not in self._sizes:
                return None
            self._reads += 1
            return self._cached_read(block_id)

    def get_many(self, block_ids: Iterable[BlockId]) -> List[Payload]:
        """Read a batch of blocks with one availability check.

        Raises on the first unknown block; the read counter advances by the
        number of payloads returned.
        """
        if not self._available:
            raise BlockUnavailableError(
                f"location {self._location_id} is unavailable for reads"
            )
        payloads: List[Payload] = []
        with self._lock:
            for block_id in block_ids:
                if block_id not in self._sizes:
                    raise UnknownBlockError(
                        f"block {block_id!r} is not stored at location "
                        f"{self._location_id}"
                    )
                payloads.append(self._cached_read(block_id))
            self._reads += len(payloads)
        return payloads

    def try_get_many(self, block_ids: Iterable[BlockId]) -> List[Optional[Payload]]:
        """Bulk :meth:`try_get`: ``None`` for absent blocks, everything ``None``
        when the location is down.  One availability check per batch; the read
        counter advances by the number of payloads returned."""
        wanted = list(block_ids)
        if not self._available:
            return [None] * len(wanted)
        payloads: List[Optional[Payload]] = []
        hits = 0
        with self._lock:
            if not self._cache_blocks:
                # No read cache configured: serve straight from the backend
                # at list-comprehension speed (the hot path of batched
                # repair; one lock acquisition for the whole batch).
                sizes = self._sizes
                backend_get = self._backend.get
                payloads = [
                    backend_get(block_id) if block_id in sizes else None
                    for block_id in wanted
                ]
                hits = sum(1 for payload in payloads if payload is not None)
                self._reads += hits
                return payloads
            for block_id in wanted:
                if block_id in self._sizes:
                    payloads.append(self._cached_read(block_id))
                    hits += 1
                else:
                    payloads.append(None)
            self._reads += hits
        return payloads

    def delete(self, block_id: BlockId) -> None:
        with self._lock:
            if block_id not in self._sizes:
                raise UnknownBlockError(
                    f"block {block_id!r} is not stored at location {self._location_id}"
                )
            self._backend.delete(block_id)
            self._bytes -= self._sizes.pop(block_id)
            self._cache.pop(block_id, None)

    def contains(self, block_id: BlockId) -> bool:
        """True when the block is physically present (even if unavailable)."""
        return block_id in self._sizes

    def holds(self, block_id: BlockId) -> bool:
        """True when the block is present *and* the location is available."""
        return self._available and block_id in self._sizes

    def block_ids(self) -> Iterator[BlockId]:
        with self._lock:
            return iter(list(self._sizes.keys()))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Push buffered backend writes to the medium."""
        self._backend.flush()

    def close(self) -> None:
        """Persist counters (on persistent backends) and release the backend."""
        if self._backend.persistent:
            self._backend.save_meta({"reads": self._reads, "writes": self._writes})
        self._backend.close()

    def __len__(self) -> int:
        return len(self._sizes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "up" if self._available else "down"
        return (
            f"BlockStore(location={self._location_id}, blocks={len(self._sizes)}, "
            f"backend={self._backend.name}, {state})"
        )
