"""Explicit cluster topology: sites, racks and nodes as first-class objects.

The paper's claim is that alpha entanglement codes keep data alive in
*unreliable, geographically distributed* environments (Sec. V-C discusses
correlated failures of whole failure domains).  Modelling the world as
``location_count`` anonymous integers cannot express "spread this stripe
across sites" -- this module gives the placement layer a real spatial model:

* a :class:`Topology` is a tree of site -> rack -> node with per-node
  capacity weights and **stable node ids** (the 0-based location indexes the
  rest of the stack already speaks);
* topologies are constructible from compact specs
  (``Topology.parse("sites=3,racks=2,nodes=4")``), JSON files
  (:meth:`Topology.load` / :meth:`Topology.save`) or programmatically
  (:class:`TopologyBuilder`), and round-trip exactly through
  :meth:`Topology.to_json` / :meth:`Topology.from_json`;
* derived *failure-domain views* (:meth:`Topology.domains`) answer the one
  question placement and disaster injection share: which locations fail
  together?
* disaster targets (``"site:0"``, ``"rack:eu/0"``, ``"node:5"``) resolve to
  location sets through :meth:`Topology.locations_for_target`.

A flat ``location_count`` cluster is just the degenerate single-site,
single-rack topology (:meth:`Topology.flat`), which is how every legacy
``location_count=N`` call site keeps working unchanged.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import InvalidParametersError

__all__ = [
    "DOMAIN_LEVELS",
    "Topology",
    "TopologyBuilder",
    "TopologyNode",
    "iter_targets",
    "parse_topology_spec",
]

#: Failure-domain granularities, coarsest first.
DOMAIN_LEVELS = ("site", "rack", "node")

#: Topology JSON format version (bumped on incompatible layout changes).
TOPOLOGY_FORMAT = 1


@dataclass(frozen=True)
class TopologyNode:
    """One storage node: a stable location id plus its place in the tree.

    ``node_id`` is the 0-based location index used by every placement policy,
    cluster directory and disaster trace; ``capacity`` is a relative weight
    (heterogeneous nodes get proportionally more blocks under the
    ``"weighted"`` placement policy).
    """

    node_id: int
    site: str
    rack: str
    name: str
    capacity: float = 1.0


class Topology:
    """An immutable site -> rack -> node tree with stable node ids."""

    def __init__(self, nodes: Sequence[TopologyNode]) -> None:
        nodes = tuple(nodes)
        if not nodes:
            raise InvalidParametersError("a topology needs at least one node")
        for expected, node in enumerate(nodes):
            if node.node_id != expected:
                raise InvalidParametersError(
                    f"topology node ids must be consecutive from 0; "
                    f"found id {node.node_id} at position {expected}"
                )
            if node.capacity <= 0:
                raise InvalidParametersError(
                    f"node {node.name!r} has non-positive capacity {node.capacity}"
                )
        self._nodes = nodes
        # Ordered, first-seen site and (site, rack) catalogues.
        self._sites: List[str] = []
        self._racks: List[Tuple[str, str]] = []
        site_members: Dict[str, List[int]] = {}
        rack_members: Dict[Tuple[str, str], List[int]] = {}
        for node in nodes:
            if node.site not in site_members:
                self._sites.append(node.site)
                site_members[node.site] = []
            rack_key = (node.site, node.rack)
            if rack_key not in rack_members:
                self._racks.append(rack_key)
                rack_members[rack_key] = []
            site_members[node.site].append(node.node_id)
            rack_members[rack_key].append(node.node_id)
        self._site_members = {site: tuple(ids) for site, ids in site_members.items()}
        self._rack_members = {key: tuple(ids) for key, ids in rack_members.items()}
        self._site_index = {site: i for i, site in enumerate(self._sites)}
        self._rack_index = {key: i for i, key in enumerate(self._racks)}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def flat(cls, location_count: int, site: str = "site-0", rack: str = "rack-0") -> "Topology":
        """The legacy shim: ``location_count`` nodes in one site and rack."""
        if location_count < 1:
            raise InvalidParametersError("a topology needs at least one node")
        return cls(
            [
                TopologyNode(i, site, rack, f"node-{i:04d}")
                for i in range(location_count)
            ]
        )

    @classmethod
    def grid(
        cls,
        sites: int,
        racks_per_site: int = 1,
        nodes_per_rack: int = 1,
        capacity: float = 1.0,
    ) -> "Topology":
        """A regular sites x racks x nodes grid (what the spec grammar builds)."""
        if min(sites, racks_per_site, nodes_per_rack) < 1:
            raise InvalidParametersError("sites, racks and nodes must all be >= 1")
        nodes: List[TopologyNode] = []
        for s in range(sites):
            for r in range(racks_per_site):
                for n in range(nodes_per_rack):
                    nodes.append(
                        TopologyNode(
                            node_id=len(nodes),
                            site=f"site-{s}",
                            rack=f"rack-{r}",
                            name=f"s{s}.r{r}.n{n}",
                            capacity=capacity,
                        )
                    )
        return cls(nodes)

    @classmethod
    def parse(cls, spec: str) -> "Topology":
        """Build a topology from the compact spec grammar (see below).

        ``"sites=3,racks=2,nodes=4"`` -- 3 sites of 2 racks of 4 nodes each
        (24 locations); omitted keys default to 1, so ``"sites=3,nodes=4"``
        is 3 single-rack sites.  A bare integer (``"12"``) is the flat
        single-site shim.
        """
        return parse_topology_spec(spec)

    @classmethod
    def resolve(cls, value: Union["Topology", int, str, None]) -> Optional["Topology"]:
        """Coerce any accepted topology description into a :class:`Topology`.

        ``None`` passes through; an ``int`` becomes the flat shim; a string is
        either a JSON file path (when it names an existing file or ends in
        ``.json``) or a compact spec.
        """
        if value is None or isinstance(value, Topology):
            return value
        if isinstance(value, int):
            return cls.flat(value)
        if isinstance(value, str):
            if value.endswith(".json") or os.path.isfile(value):
                return cls.load(value)
            return cls.parse(value)
        raise InvalidParametersError(
            f"cannot interpret {value!r} as a topology; expected a Topology, "
            "a location count, a spec like 'sites=3,racks=2,nodes=4' or a "
            "JSON file path"
        )

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[TopologyNode, ...]:
        return self._nodes

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def sites(self) -> Tuple[str, ...]:
        """Site names in first-seen order."""
        return tuple(self._sites)

    @property
    def site_count(self) -> int:
        return len(self._sites)

    @property
    def rack_count(self) -> int:
        """Total racks across all sites."""
        return len(self._racks)

    def capacities(self) -> np.ndarray:
        """Per-node capacity weights as a float array (index = node id)."""
        return np.array([node.capacity for node in self._nodes], dtype=np.float64)

    def node(self, node_id: int) -> TopologyNode:
        if not 0 <= node_id < len(self._nodes):
            raise InvalidParametersError(
                f"node id {node_id} outside 0..{len(self._nodes) - 1}"
            )
        return self._nodes[node_id]

    def site_of(self, node_id: int) -> str:
        return self.node(node_id).site

    def rack_of(self, node_id: int) -> Tuple[str, str]:
        node = self.node(node_id)
        return (node.site, node.rack)

    def site_locations(self, site: Union[int, str]) -> Tuple[int, ...]:
        """Node ids of one site, addressed by index or name."""
        name = self._site_name(site)
        return self._site_members[name]

    def rack_locations(self, site: Union[int, str], rack: Union[int, str]) -> Tuple[int, ...]:
        """Node ids of one rack, addressed by (site, rack) index or name."""
        site_name = self._site_name(site)
        racks = [key for key in self._racks if key[0] == site_name]
        if isinstance(rack, int) or (isinstance(rack, str) and rack.isdigit()):
            index = int(rack)
            if not 0 <= index < len(racks):
                raise InvalidParametersError(
                    f"site {site_name!r} has {len(racks)} racks, not a rack {index}"
                )
            return self._rack_members[racks[index]]
        key = (site_name, rack)
        if key not in self._rack_members:
            raise InvalidParametersError(
                f"unknown rack {rack!r} in site {site_name!r}"
            )
        return self._rack_members[key]

    def _site_name(self, site: Union[int, str]) -> str:
        if isinstance(site, int) or (isinstance(site, str) and site.isdigit()):
            index = int(site)
            if not 0 <= index < len(self._sites):
                raise InvalidParametersError(
                    f"site index {index} outside 0..{len(self._sites) - 1}"
                )
            return self._sites[index]
        if site not in self._site_index:
            raise InvalidParametersError(
                f"unknown site {site!r}; sites: {', '.join(self._sites)}"
            )
        return site

    # ------------------------------------------------------------------
    # Failure-domain views
    # ------------------------------------------------------------------
    def domains(self, level: str = "site") -> Tuple[Tuple[int, ...], ...]:
        """Groups of node ids that fail together at the given granularity."""
        if level == "site":
            return tuple(self._site_members[site] for site in self._sites)
        if level == "rack":
            return tuple(self._rack_members[key] for key in self._racks)
        if level == "node":
            return tuple((node.node_id,) for node in self._nodes)
        raise InvalidParametersError(
            f"unknown domain level {level!r}; expected one of {DOMAIN_LEVELS}"
        )

    def domain_of(self, node_id: int, level: str = "site") -> int:
        """Index (within :meth:`domains`) of the domain holding ``node_id``."""
        node = self.node(node_id)
        if level == "site":
            return self._site_index[node.site]
        if level == "rack":
            return self._rack_index[(node.site, node.rack)]
        if level == "node":
            return node.node_id
        raise InvalidParametersError(
            f"unknown domain level {level!r}; expected one of {DOMAIN_LEVELS}"
        )

    def domain_labels(self, level: str = "site") -> Tuple[str, ...]:
        """Human-readable names of :meth:`domains`, index-aligned."""
        if level == "site":
            return tuple(self._sites)
        if level == "rack":
            return tuple(f"{site}/{rack}" for site, rack in self._racks)
        if level == "node":
            return tuple(node.name for node in self._nodes)
        raise InvalidParametersError(
            f"unknown domain level {level!r}; expected one of {DOMAIN_LEVELS}"
        )

    def default_level(self) -> str:
        """The coarsest level with more than one domain (spread target)."""
        if self.site_count > 1:
            return "site"
        if self.rack_count > 1:
            return "rack"
        return "node"

    def is_flat(self) -> bool:
        """True for the degenerate single-site, single-rack shim."""
        return self.site_count == 1 and self.rack_count == 1

    # ------------------------------------------------------------------
    # Disaster targets
    # ------------------------------------------------------------------
    def locations_for_target(self, target: str) -> Tuple[int, ...]:
        """Resolve a disaster target string to the node ids it takes down.

        Grammar: ``site:<index|name>``, ``rack:<site>/<rack>`` (site and rack
        by index or name) and ``node:<id>``.
        """
        kind, separator, rest = target.partition(":")
        if not separator or not rest:
            raise InvalidParametersError(
                f"malformed topology target {target!r}; expected 'site:0', "
                "'rack:0/1' or 'node:5'"
            )
        kind = kind.strip().lower()
        rest = rest.strip()
        if kind == "site":
            return self.site_locations(rest)
        if kind == "rack":
            site, slash, rack = rest.partition("/")
            if not slash:
                raise InvalidParametersError(
                    f"malformed rack target {target!r}; expected 'rack:<site>/<rack>'"
                )
            return self.rack_locations(site.strip(), rack.strip())
        if kind == "node":
            if not rest.isdigit():
                raise InvalidParametersError(
                    f"malformed node target {target!r}; expected 'node:<id>'"
                )
            return (self.node(int(rest)).node_id,)
        raise InvalidParametersError(
            f"unknown topology target kind {kind!r}; expected site, rack or node"
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dict (the :meth:`from_dict` inverse, id order preserved)."""
        return {
            "format": TOPOLOGY_FORMAT,
            "nodes": [
                {
                    "id": node.node_id,
                    "site": node.site,
                    "rack": node.rack,
                    "name": node.name,
                    "capacity": node.capacity,
                }
                for node in self._nodes
            ],
        }

    @classmethod
    def from_dict(cls, document: Dict[str, object]) -> "Topology":
        try:
            if int(document.get("format", TOPOLOGY_FORMAT)) != TOPOLOGY_FORMAT:
                raise InvalidParametersError(
                    f"unsupported topology format {document.get('format')!r}"
                )
            nodes = [
                TopologyNode(
                    node_id=int(entry["id"]),
                    site=str(entry["site"]),
                    rack=str(entry["rack"]),
                    name=str(entry.get("name", f"node-{entry['id']}")),
                    capacity=float(entry.get("capacity", 1.0)),
                )
                for entry in document["nodes"]
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise InvalidParametersError(f"malformed topology document: {exc}") from exc
        return cls(nodes)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1)

    @classmethod
    def from_json(cls, text: str) -> "Topology":
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise InvalidParametersError(f"malformed topology JSON: {exc}") from exc
        return cls.from_dict(document)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "Topology":
        with open(path, "r", encoding="utf-8") as stream:
            return cls.from_json(stream.read())

    # ------------------------------------------------------------------
    # Dunders / cosmetics
    # ------------------------------------------------------------------
    def describe(self) -> str:
        per_site = [len(self._site_members[site]) for site in self._sites]
        racks = f"{self.rack_count} rack{'s' if self.rack_count != 1 else ''}"
        capacities = self.capacities()
        weight = (
            "uniform capacity"
            if np.all(capacities == capacities[0])
            else "heterogeneous capacity"
        )
        return (
            f"{self.site_count} site{'s' if self.site_count != 1 else ''} "
            f"({'/'.join(str(n) for n in per_site)} nodes), {racks}, "
            f"{self.node_count} locations, {weight}"
        )

    def __len__(self) -> int:
        return len(self._nodes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return self._nodes == other._nodes

    def __hash__(self) -> int:
        return hash(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Topology({self.describe()})"


def parse_topology_spec(spec: str) -> Topology:
    """Parse the compact topology spec grammar.

    ``sites=<S>,racks=<R>,nodes=<N>[,capacity=<C>]`` builds a regular grid of
    ``S`` sites with ``R`` racks each and ``N`` nodes per rack; omitted keys
    default to 1.  A bare integer is the flat single-site shim.
    """
    cleaned = spec.strip()
    if not cleaned:
        raise InvalidParametersError("empty topology spec")
    if cleaned.isdigit():
        return Topology.flat(int(cleaned))
    values: Dict[str, str] = {}
    for part in cleaned.split(","):
        key, separator, value = part.partition("=")
        key = key.strip().lower()
        if not separator or not value.strip():
            raise InvalidParametersError(
                f"malformed topology spec part {part!r} in {spec!r}; "
                "expected key=value pairs like 'sites=3,racks=2,nodes=4'"
            )
        if key not in ("sites", "racks", "nodes", "capacity"):
            raise InvalidParametersError(
                f"unknown topology spec key {key!r} in {spec!r}; "
                "known keys: sites, racks, nodes, capacity"
            )
        if key in values:
            raise InvalidParametersError(f"duplicate key {key!r} in {spec!r}")
        values[key] = value.strip()
    try:
        sites = int(values.get("sites", "1"))
        racks = int(values.get("racks", "1"))
        nodes = int(values.get("nodes", "1"))
        capacity = float(values.get("capacity", "1.0"))
    except ValueError as exc:
        raise InvalidParametersError(f"malformed topology spec {spec!r}: {exc}") from exc
    return Topology.grid(sites, racks, nodes, capacity=capacity)


class TopologyBuilder:
    """Programmatic topology construction with stable insertion-order ids.

    ::

        topology = (
            TopologyBuilder()
            .site("eu").rack("r0").nodes(4)
            .site("us").rack("r0").nodes(4, capacity=2.0)
            .build()
        )
    """

    def __init__(self) -> None:
        self._nodes: List[TopologyNode] = []
        self._site: Optional[str] = None
        self._rack: Optional[str] = None
        self._site_serial = 0
        self._rack_serial = 0
        self._node_serial = 0

    def site(self, name: Optional[str] = None) -> "TopologyBuilder":
        """Start a new site; subsequent racks/nodes belong to it."""
        self._site = name if name is not None else f"site-{self._site_serial}"
        self._site_serial += 1
        self._rack = None
        self._rack_serial = 0
        return self

    def rack(self, name: Optional[str] = None) -> "TopologyBuilder":
        """Start a new rack inside the current site."""
        if self._site is None:
            self.site()
        self._rack = name if name is not None else f"rack-{self._rack_serial}"
        self._rack_serial += 1
        self._node_serial = 0
        return self

    def node(self, name: Optional[str] = None, capacity: float = 1.0) -> "TopologyBuilder":
        """Add one node to the current rack (implicitly created if needed)."""
        if self._rack is None:
            self.rack()
        node_name = (
            name
            if name is not None
            else f"{self._site}.{self._rack}.n{self._node_serial}"
        )
        self._node_serial += 1
        self._nodes.append(
            TopologyNode(
                node_id=len(self._nodes),
                site=self._site,  # type: ignore[arg-type]
                rack=self._rack,  # type: ignore[arg-type]
                name=node_name,
                capacity=capacity,
            )
        )
        return self

    def nodes(self, count: int, capacity: float = 1.0) -> "TopologyBuilder":
        """Add ``count`` identical nodes to the current rack."""
        for _ in range(count):
            self.node(capacity=capacity)
        return self

    def build(self) -> Topology:
        return Topology(self._nodes)


def iter_targets(topology: Topology, targets: Iterable[str]) -> Tuple[int, ...]:
    """Union of the locations named by several target strings, sorted."""
    failed: set = set()
    for target in targets:
        failed.update(topology.locations_for_target(target))
    return tuple(sorted(failed))
