"""Group-committed metadata write-ahead log for the storage service.

PR 4 made the service durable by rewriting the whole ``manifest.json``
after *every* mutation -- an O(catalogue) JSON dump plus (with ``fsync``)
two forced flushes per put.  Once the encoder went batched (PR 5/6) that
rewrite became the write-path bottleneck: metadata, not entanglement, was
the cost of a put.

:class:`MetadataWAL` replaces the per-mutation rewrite with an append-only
log of CRC-framed records.  Mutations append O(delta) bytes instead of
rewriting O(catalogue) JSON, and concurrent mutators *group commit*: every
committer enqueues its records, one of them (the leader) drains the queue,
writes every enqueued group and issues a single ``flush``/``fsync`` for the
whole batch.  Under N concurrent writers the per-mutation fsync cost is
amortised N ways -- the classic group-commit win from write-ahead-logging
databases.

Framing follows :class:`~repro.storage.backends.SegmentLogBackend`: a fixed
struct header (magic, frame type, body length, CRC32) followed by a JSON
body.  A *group* is a run of ``op`` frames sealed by one ``commit`` frame
carrying the group's sequence number and record count; replay only yields
groups whose commit frame checks out, so a torn tail (crash mid-batch) can
never surface a partial group.  Recovery truncates the log back to the last
committed group -- the same contract as the segment log's torn-tail scan.

The service layer (:mod:`repro.system.service`) checkpoints by collapsing
the log into ``manifest.json`` (atomic ``write_json``) and calling
:meth:`MetadataWAL.reset`; reopen = load the manifest + replay the tail.
Record *content* (``put_doc`` / ``delete_doc`` / ``scheme_state`` /
``placement``) is owned by the service; this module only knows framed JSON
dicts.  See ``docs/persistence.md`` for the full format and the
crash-window walkthrough.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass, field
from typing import IO, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import InvalidParametersError

#: File name of the metadata WAL inside a durable ``data_dir``.
WAL_NAME = "wal.log"

#: Per-frame header: magic, frame type, body length, CRC32 of type + body.
_FRAME_HEADER = struct.Struct("<4sBII")
_FRAME_MAGIC = b"RWL1"

#: Frame types: one metadata record / the seal of a commit group.
_FRAME_OP = 1
_FRAME_COMMIT = 2

#: Upper bound on one frame body; anything larger is treated as corruption
#: by the scanner (a real record is a few hundred bytes of JSON).
_MAX_FRAME_BYTES = 1 << 26


@dataclass
class WalFrame:
    """One decoded frame, with its byte extent (for crash-safety sweeps)."""

    frame_type: int
    record: Dict[str, object]
    start: int
    end: int


@dataclass
class WalGroup:
    """One committed group: the records of a single atomic metadata commit."""

    seq: int
    ops: List[Dict[str, object]]
    #: Byte offset just past this group's commit frame (a valid truncation
    #: point: cutting the file here keeps exactly the groups up to this one).
    end_offset: int


@dataclass
class _PendingGroup:
    """A group enqueued for commit, waited on by its submitting thread."""

    ops: Sequence[Dict[str, object]]
    seq: int
    done: bool = False
    error: Optional[BaseException] = field(default=None)


def _frame_bytes(frame_type: int, record: Dict[str, object]) -> bytes:
    body = json.dumps(record, separators=(",", ":"), sort_keys=True).encode("utf-8")
    header = _FRAME_HEADER.pack(
        _FRAME_MAGIC, frame_type, len(body), zlib.crc32(bytes([frame_type]) + body)
    )
    return header + body


def iter_frames(path: str) -> List[WalFrame]:
    """Decode the valid frame prefix of a WAL file (stops at the first tear).

    Exposed for the crash-safety sweep in the tests: the frame extents are
    the interesting truncation points.
    """
    frames: List[WalFrame] = []
    try:
        handle: IO[bytes] = open(path, "rb")
    except FileNotFoundError:
        return frames
    with handle:
        offset = 0
        while True:
            header = handle.read(_FRAME_HEADER.size)
            if len(header) < _FRAME_HEADER.size:
                return frames
            magic, frame_type, body_len, crc = _FRAME_HEADER.unpack(header)
            if magic != _FRAME_MAGIC or body_len > _MAX_FRAME_BYTES:
                return frames
            body = handle.read(body_len)
            if len(body) < body_len:
                return frames
            if zlib.crc32(bytes([frame_type]) + body) != crc:
                return frames
            try:
                record = json.loads(body)
            except ValueError:
                return frames
            if not isinstance(record, dict):
                return frames
            end = offset + _FRAME_HEADER.size + body_len
            frames.append(WalFrame(frame_type, record, offset, end))
            offset = end


def scan_wal(path: str) -> Tuple[List[WalGroup], int]:
    """Scan a WAL file into its committed groups.

    Returns ``(groups, valid_end)`` where ``valid_end`` is the byte offset
    of the end of the last *committed* group -- everything past it (torn
    frames, op frames with no commit seal) is recovery garbage to truncate.
    Only fully sealed groups are returned: a crash anywhere inside a batch
    makes the whole group invisible, never partially visible.
    """
    groups: List[WalGroup] = []
    valid_end = 0
    pending: List[Dict[str, object]] = []
    for frame in iter_frames(path):
        if frame.frame_type == _FRAME_OP:
            pending.append(frame.record)
        elif frame.frame_type == _FRAME_COMMIT:
            count = int(frame.record.get("ops", -1))
            if count != len(pending):
                # A commit seal that does not match its op run means the
                # writer was interleaved or the file was edited; nothing
                # after this point can be trusted.
                break
            groups.append(
                WalGroup(
                    seq=int(frame.record.get("seq", 0)),
                    ops=pending,
                    end_offset=frame.end,
                )
            )
            pending = []
            valid_end = frame.end
        else:
            break
    return groups, valid_end


class MetadataWAL:
    """Append-only, group-committed metadata log with torn-tail recovery.

    Thread-safe: any number of threads may call :meth:`commit`
    concurrently; the records of one call form one atomic group.  Opening
    an existing file recovers the committed groups (exposed through
    :meth:`recovered_groups` for the service to replay) and truncates any
    torn tail in place.
    """

    def __init__(self, path: str, fsync: bool = False) -> None:
        self._path = path
        self._fsync = bool(fsync)
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._recovered, valid_end = scan_wal(path)
        if os.path.exists(path) and os.path.getsize(path) > valid_end:
            # Torn tail: cut the log back to the last committed group so
            # appended frames always follow a clean boundary.
            with open(path, "r+b") as handle:
                handle.truncate(valid_end)
        self._handle: IO[bytes] = open(path, "ab")
        self._size = valid_end
        self._cond = threading.Condition()
        self._pending: List[_PendingGroup] = []
        self._writing = False
        self._closed = False
        self._next_seq = (self._recovered[-1].seq + 1) if self._recovered else 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        return self._path

    @property
    def size_bytes(self) -> int:
        """Committed log size (drives the service's checkpoint threshold)."""
        with self._cond:
            return self._size

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently assigned group (0 if none)."""
        with self._cond:
            return self._next_seq - 1

    def recovered_groups(self) -> List[WalGroup]:
        """The committed groups found when this WAL was opened."""
        return list(self._recovered)

    # ------------------------------------------------------------------
    # Group commit
    # ------------------------------------------------------------------
    def commit(self, ops: Sequence[Dict[str, object]]) -> int:
        """Durably append one group of records, returning its sequence number.

        Concurrent callers are batched: whichever thread finds no write in
        progress becomes the *leader*, drains every enqueued group, writes
        all their frames and issues a single ``flush`` (+ ``fsync`` when
        enabled) for the whole batch; the followers just wait on the
        condition variable.  All groups of a batch become durable together.
        """
        if not ops:
            with self._cond:
                return self._next_seq - 1
        with self._cond:
            if self._closed:
                raise InvalidParametersError(
                    f"metadata WAL {self._path!r} is closed"
                )
            group = _PendingGroup(ops=list(ops), seq=self._next_seq)
            self._next_seq += 1
            self._pending.append(group)
            while not group.done and self._writing:
                self._cond.wait()
            if group.done:
                # A previous leader carried this group in its batch.
                if group.error is not None:
                    raise group.error
                return group.seq
            # Leadership: claim the writer role and the current queue.
            self._writing = True
            batch = self._pending
            self._pending = []
            base = self._size
        error: Optional[BaseException] = None
        poisoned = False
        written = 0
        try:
            written = self._write_batch(batch)
        except BaseException as exc:  # noqa: B036,RPR004 - re-raised below; every waiter must wake
            error = exc
            # Cut any torn bytes of the failed batch so later appends do not
            # land after garbage (replay stops at the first tear, which
            # would silently hide every group written after it).
            try:
                self._handle.truncate(base)
            except OSError:
                poisoned = True
        with self._cond:
            self._writing = False
            self._size += written
            if poisoned:
                # The file may hold torn frames we could not cut; refuse
                # further commits instead of losing them silently.
                self._closed = True
            for member in batch:
                member.done = True
                member.error = error
            self._cond.notify_all()
        if error is not None:
            raise error
        return group.seq

    def _write_batch(self, batch: Sequence[_PendingGroup]) -> int:
        chunks: List[bytes] = []
        for member in batch:
            for record in member.ops:
                chunks.append(_frame_bytes(_FRAME_OP, dict(record)))
            chunks.append(
                _frame_bytes(
                    _FRAME_COMMIT, {"seq": member.seq, "ops": len(member.ops)}
                )
            )
        blob = b"".join(chunks)
        self._handle.write(blob)
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())
        return len(blob)

    # ------------------------------------------------------------------
    # Checkpoint support and lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Discard the log after its content was checkpointed elsewhere.

        Waits for an in-flight batch to finish, then truncates the file to
        empty.  The group sequence keeps counting up -- replay correctness
        only needs ordering, not density.
        """
        with self._cond:
            while self._writing:
                self._cond.wait()
            if self._closed:
                return
            self._handle.flush()
            self._handle.truncate(0)
            if self._fsync:
                os.fsync(self._handle.fileno())
            self._size = 0
            self._recovered = []

    def close(self) -> None:
        """Flush and release the log file.  Idempotent."""
        with self._cond:
            while self._writing:
                self._cond.wait()
            if self._closed:
                return
            self._closed = True
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "MetadataWAL":
        return self

    def __exit__(self, exc_type: object, exc_value: object, traceback: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MetadataWAL(path={self._path!r}, size={self._size})"
