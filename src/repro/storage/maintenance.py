"""Maintenance policies: how aggressively a system restores redundancy.

The paper emphasises the "hidden role of maintenance" (Sec. V): the same code
behaves very differently depending on whether the system repairs everything,
repairs only what users ask for, or repairs nothing.  Three policies are
modelled:

* **full maintenance** -- every missing block (data or parity) is repaired;
* **minimal maintenance** -- only missing *data* blocks are repaired; parities
  are restored only as a by-product (this is the regime of Fig. 12, where a
  large fraction of data ends up without redundancy);
* **no maintenance** -- nothing is repaired; used to measure raw exposure.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.blocks import BlockId, is_data


class MaintenancePolicy(str, Enum):
    """How much repair work the system performs after failures."""

    FULL = "full"
    MINIMAL = "minimal"
    NONE = "none"

    def repairs_block(self, block_id: BlockId) -> bool:
        """Whether this policy attempts to repair ``block_id``."""
        if self is MaintenancePolicy.NONE:
            return False
        if self is MaintenancePolicy.MINIMAL:
            return is_data(block_id)
        return True

    def repairs_parities(self) -> bool:
        return self is MaintenancePolicy.FULL

    def describe(self) -> str:
        return {
            MaintenancePolicy.FULL: "repair every missing block (data and parities)",
            MaintenancePolicy.MINIMAL: "repair missing data blocks only",
            MaintenancePolicy.NONE: "no repairs",
        }[self]


@dataclass(frozen=True)
class MaintenanceBudget:
    """Optional cap on repair work per round (bandwidth-limited maintenance).

    ``max_repairs_per_round`` limits how many blocks a round may rebuild, and
    ``max_rounds`` bounds the total number of rounds.  ``unlimited()`` matches
    the paper's evaluation, which lets repairs run to completion.
    """

    max_repairs_per_round: int | None = None
    max_rounds: int | None = None

    @classmethod
    def unlimited(cls) -> "MaintenanceBudget":
        return cls(None, None)

    def allows_round(self, round_number: int) -> bool:
        return self.max_rounds is None or round_number <= self.max_rounds

    def clip_round(self, planned_repairs: int) -> int:
        if self.max_repairs_per_round is None:
            return planned_repairs
        return min(planned_repairs, self.max_repairs_per_round)
