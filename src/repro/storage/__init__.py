"""Storage substrate: backends, locations, clusters, placement and repair.

This subpackage models the physical layer beneath the entanglement lattice --
storage locations that can fail, a cluster that maps blocks to locations, and
the repair machinery that restores redundancy after disasters.

Payload bytes live on pluggable, durable backends
(:mod:`repro.storage.backends`): ``"memory"`` for simulations, ``"disk"``
(one file per block) and ``"segment"`` (append-only segment log with
compaction) for restartable archives.  ``repro.storage.backends.get(name,
root=...)`` resolves a backend; :class:`BlockStore` and
:class:`StorageCluster` accept the same specs.  See ``docs/persistence.md``
for the on-disk layout and crash-recovery semantics.
"""

from repro.storage import backends
from repro.storage.backends import (
    DiskBackend,
    MemoryBackend,
    SegmentLogBackend,
    StorageBackend,
    decode_block_id,
    encode_block_id,
)
from repro.storage.block_store import BlockStore
from repro.storage.cluster import ClusterStats, StorageCluster
from repro.storage.failures import (
    ChurnEvent,
    ChurnTrace,
    CorrelatedFailureDomains,
    Disaster,
    PAPER_DISASTER_SIZES,
    disaster_for_fraction,
    disaster_series,
)
from repro.storage.maintenance import MaintenanceBudget, MaintenancePolicy
from repro.storage.placement import (
    DictionaryPlacement,
    PlacementPolicy,
    RandomPlacement,
    RoundRobinPlacement,
    StrandAwarePlacement,
    placement_balance,
)
from repro.storage.scrub import ChecksumManifest, ScrubFinding, ScrubReport, Scrubber
from repro.storage.repair import (
    ClusterRepairManager,
    ClusterRepairReport,
    ClusterRepairRound,
)

__all__ = [
    "BlockStore",
    "ChecksumManifest",
    "DiskBackend",
    "MemoryBackend",
    "SegmentLogBackend",
    "StorageBackend",
    "backends",
    "decode_block_id",
    "encode_block_id",
    "ChurnEvent",
    "ChurnTrace",
    "ClusterRepairManager",
    "ClusterRepairReport",
    "ClusterRepairRound",
    "ClusterStats",
    "CorrelatedFailureDomains",
    "DictionaryPlacement",
    "Disaster",
    "MaintenanceBudget",
    "MaintenancePolicy",
    "PAPER_DISASTER_SIZES",
    "PlacementPolicy",
    "RandomPlacement",
    "RoundRobinPlacement",
    "ScrubFinding",
    "ScrubReport",
    "Scrubber",
    "StorageCluster",
    "StrandAwarePlacement",
    "disaster_for_fraction",
    "disaster_series",
    "placement_balance",
]
