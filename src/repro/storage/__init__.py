"""Storage substrate: backends, topology, clusters, placement and repair.

This subpackage models the physical layer beneath the entanglement lattice --
storage locations that can fail, a cluster that maps blocks to locations, and
the repair machinery that restores redundancy after disasters.

The spatial model is an explicit :class:`~repro.storage.topology.Topology`
(site -> rack -> node with per-node capacity weights); placement policies are
resolved from the string-keyed registry in :mod:`repro.storage.placement`
(``placement.get("spread-domains", topology)``), and disasters can target
whole failure domains (``disaster_for_target(topology, "site:0")``).  See
``docs/topology.md`` for the spec grammar and the policy catalogue.

Payload bytes live on pluggable, durable backends
(:mod:`repro.storage.backends`): ``"memory"`` for simulations, ``"disk"``
(one file per block) and ``"segment"`` (append-only segment log with
compaction) for restartable archives.  ``repro.storage.backends.get(name,
root=...)`` resolves a backend; :class:`BlockStore` and
:class:`StorageCluster` accept the same specs.  Service *metadata* commits
go through the group-committed write-ahead log of :mod:`repro.storage.wal`
(:class:`MetadataWAL`).  See ``docs/persistence.md`` for the on-disk layout
and crash-recovery semantics.
"""

from repro.storage import backends
from repro.storage import placement
from repro.storage import topology
from repro.storage.backends import (
    DiskBackend,
    MemoryBackend,
    SegmentLogBackend,
    StorageBackend,
    decode_block_id,
    encode_block_id,
)
from repro.storage.block_store import BlockStore
from repro.storage.cluster import ClusterBlockSource, ClusterStats, StorageCluster
from repro.storage.failures import (
    ChurnEvent,
    ChurnTrace,
    CorrelatedFailureDomains,
    Disaster,
    PAPER_DISASTER_SIZES,
    disaster_for_fraction,
    disaster_for_target,
    disaster_series,
)
from repro.storage.maintenance import MaintenanceBudget, MaintenancePolicy
from repro.storage.placement import (
    DictionaryPlacement,
    PlacementPolicy,
    RandomPlacement,
    RoundRobinPlacement,
    SpreadDomainsPlacement,
    StrandAwarePlacement,
    WeightedPlacement,
    domain_balance,
    placement_balance,
)
from repro.storage.scrub import ChecksumManifest, ScrubFinding, ScrubReport, Scrubber
from repro.storage.repair import (
    ClusterRepairManager,
    ClusterRepairReport,
    ClusterRepairRound,
)
from repro.storage.topology import (
    DOMAIN_LEVELS,
    Topology,
    TopologyBuilder,
    TopologyNode,
    iter_targets,
    parse_topology_spec,
)
from repro.storage.wal import (
    MetadataWAL,
    WalFrame,
    WalGroup,
    iter_frames,
    scan_wal,
)

__all__ = [
    "BlockStore",
    "ChecksumManifest",
    "ChurnEvent",
    "ChurnTrace",
    "ClusterBlockSource",
    "ClusterRepairManager",
    "ClusterRepairReport",
    "ClusterRepairRound",
    "ClusterStats",
    "CorrelatedFailureDomains",
    "DOMAIN_LEVELS",
    "DictionaryPlacement",
    "Disaster",
    "DiskBackend",
    "MaintenanceBudget",
    "MaintenancePolicy",
    "MemoryBackend",
    "MetadataWAL",
    "PAPER_DISASTER_SIZES",
    "PlacementPolicy",
    "RandomPlacement",
    "RoundRobinPlacement",
    "ScrubFinding",
    "ScrubReport",
    "Scrubber",
    "SegmentLogBackend",
    "SpreadDomainsPlacement",
    "StorageBackend",
    "StorageCluster",
    "StrandAwarePlacement",
    "Topology",
    "TopologyBuilder",
    "TopologyNode",
    "WalFrame",
    "WalGroup",
    "WeightedPlacement",
    "backends",
    "decode_block_id",
    "disaster_for_fraction",
    "disaster_for_target",
    "disaster_series",
    "domain_balance",
    "encode_block_id",
    "iter_frames",
    "iter_targets",
    "parse_topology_spec",
    "placement",
    "placement_balance",
    "scan_wal",
    "topology",
]
