"""Storage substrate: locations, clusters, placement, failures and repair.

This subpackage models the physical layer beneath the entanglement lattice --
storage locations that can fail, a cluster that maps blocks to locations, and
the repair machinery that restores redundancy after disasters.
"""

from repro.storage.block_store import BlockStore
from repro.storage.cluster import ClusterStats, StorageCluster
from repro.storage.failures import (
    ChurnEvent,
    ChurnTrace,
    CorrelatedFailureDomains,
    Disaster,
    PAPER_DISASTER_SIZES,
    disaster_for_fraction,
    disaster_series,
)
from repro.storage.maintenance import MaintenanceBudget, MaintenancePolicy
from repro.storage.placement import (
    DictionaryPlacement,
    PlacementPolicy,
    RandomPlacement,
    RoundRobinPlacement,
    StrandAwarePlacement,
    placement_balance,
)
from repro.storage.scrub import ChecksumManifest, ScrubFinding, ScrubReport, Scrubber
from repro.storage.repair import (
    ClusterRepairManager,
    ClusterRepairReport,
    ClusterRepairRound,
)

__all__ = [
    "BlockStore",
    "ChecksumManifest",
    "ChurnEvent",
    "ChurnTrace",
    "ClusterRepairManager",
    "ClusterRepairReport",
    "ClusterRepairRound",
    "ClusterStats",
    "CorrelatedFailureDomains",
    "DictionaryPlacement",
    "Disaster",
    "MaintenanceBudget",
    "MaintenancePolicy",
    "PAPER_DISASTER_SIZES",
    "PlacementPolicy",
    "RandomPlacement",
    "RoundRobinPlacement",
    "ScrubFinding",
    "ScrubReport",
    "Scrubber",
    "StorageCluster",
    "StrandAwarePlacement",
    "disaster_for_fraction",
    "disaster_series",
    "placement_balance",
]
