"""Cluster-level repair manager for entangled storage.

Bridges the core decoder and the storage substrate: it finds the blocks made
unreachable by failed locations, runs round-based repair (blocks repaired in
one round become inputs of the next), writes the rebuilt payloads to healthy
locations and accounts for the work performed (blocks read and written,
rounds, single-failure fraction) -- the quantities reported by Figs. 11/13 and
Table VI of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.blocks import BlockId, DataId, is_data
from repro.core.decoder import Decoder
from repro.core.lattice import HelicalLattice
from repro.core.xor import Payload
from repro.exceptions import RepairFailedError
from repro.storage.cluster import StorageCluster
from repro.storage.maintenance import MaintenanceBudget, MaintenancePolicy


@dataclass
class ClusterRepairRound:
    """Work performed during one repair round."""

    number: int
    repaired: List[BlockId] = field(default_factory=list)
    blocks_read: int = 0

    @property
    def count(self) -> int:
        return len(self.repaired)


@dataclass
class ClusterRepairReport:
    """Outcome of a cluster repair run."""

    policy: MaintenancePolicy
    rounds: List[ClusterRepairRound] = field(default_factory=list)
    unrecovered: List[BlockId] = field(default_factory=list)
    skipped: List[BlockId] = field(default_factory=list)

    @property
    def round_count(self) -> int:
        return len(self.rounds)

    @property
    def repaired_count(self) -> int:
        return sum(round_.count for round_ in self.rounds)

    @property
    def blocks_read(self) -> int:
        return sum(round_.blocks_read for round_ in self.rounds)

    @property
    def data_loss(self) -> int:
        """Data blocks that could not be repaired (the Fig. 11 metric)."""
        return sum(1 for block_id in self.unrecovered if is_data(block_id))

    @property
    def single_failure_fraction(self) -> float:
        """Fraction of repaired data blocks fixed in the first round (Fig. 13)."""
        data_repaired = [
            block_id
            for round_ in self.rounds
            for block_id in round_.repaired
            if is_data(block_id)
        ]
        if not data_repaired:
            return 0.0
        first_round_data = sum(1 for block_id in self.rounds[0].repaired if is_data(block_id))
        return first_round_data / len(data_repaired)

    def summary(self) -> str:
        return (
            f"policy={self.policy.value}: repaired {self.repaired_count} blocks in "
            f"{self.round_count} rounds ({self.blocks_read} reads); "
            f"data loss {self.data_loss}, {len(self.unrecovered)} blocks unrecovered"
        )


class ClusterRepairManager:
    """Runs round-based repair of an entangled lattice stored on a cluster."""

    def __init__(
        self,
        lattice: HelicalLattice,
        cluster: StorageCluster,
        block_size: int,
        policy: MaintenancePolicy = MaintenancePolicy.FULL,
        budget: Optional[MaintenanceBudget] = None,
    ) -> None:
        self._lattice = lattice
        self._cluster = cluster
        self._block_size = block_size
        self._policy = policy
        self._budget = budget or MaintenanceBudget.unlimited()

    # ------------------------------------------------------------------
    # Work discovery
    # ------------------------------------------------------------------
    def missing_blocks(self) -> Set[BlockId]:
        """Blocks of the lattice that are currently unreachable."""
        return {
            block_id
            for block_id in self._cluster.unavailable_blocks()
            if self._lattice.has_block(block_id)
        }

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def repair(self, max_rounds: int = 1000) -> ClusterRepairReport:
        """Repair the missing blocks according to the maintenance policy."""
        report = ClusterRepairReport(policy=self._policy)
        pending = self.missing_blocks()
        report.skipped = sorted(
            (block_id for block_id in pending if not self._policy.repairs_block(block_id)),
            key=_sort_key,
        )
        pending = {
            block_id for block_id in pending if self._policy.repairs_block(block_id)
        }
        if not pending:
            return report

        # Repaired payloads are written to healthy locations; within a round
        # the decoder only sees blocks available before the round started.
        repaired_overlay: Dict[BlockId, Payload] = {}
        avoid = tuple(self._cluster.unavailable_locations())
        round_number = 0
        while pending and round_number < max_rounds:
            round_number += 1
            if not self._budget.allows_round(round_number):
                break
            overlay_snapshot = dict(repaired_overlay)
            reads = [0]

            def source(block_id: BlockId, _snapshot=overlay_snapshot, _reads=reads):
                if _snapshot.get(block_id) is not None:
                    _reads[0] += 1
                    return _snapshot[block_id]
                payload = self._cluster.try_get_block(block_id)
                if payload is not None:
                    _reads[0] += 1
                return payload

            decoder = Decoder(self._lattice, source, self._block_size, max_depth=0)
            round_report = ClusterRepairRound(number=round_number)
            planned = sorted(pending, key=_sort_key)
            budget_cap = self._budget.clip_round(len(planned))
            for block_id in planned:
                if round_report.count >= budget_cap:
                    break
                try:
                    payload = decoder.repair(block_id)
                except RepairFailedError:
                    continue
                self._cluster.relocate(block_id, payload, avoid=avoid)
                repaired_overlay[block_id] = payload
                round_report.repaired.append(block_id)
            round_report.blocks_read = reads[0]
            if not round_report.repaired:
                break
            for block_id in round_report.repaired:
                pending.discard(block_id)
            report.rounds.append(round_report)
        report.unrecovered = sorted(pending, key=_sort_key)
        return report

    def repair_single(self, block_id: BlockId) -> Tuple[Payload, int]:
        """Repair one block on demand; returns the payload and the blocks read."""
        reads = [0]

        def source(requested: BlockId):
            payload = self._cluster.try_get_block(requested)
            if payload is not None:
                reads[0] += 1
            return payload

        decoder = Decoder(self._lattice, source, self._block_size)
        payload = decoder.repair(block_id)
        self._cluster.relocate(
            block_id, payload, avoid=tuple(self._cluster.unavailable_locations())
        )
        return payload, reads[0]


def _sort_key(block_id: BlockId):
    if is_data(block_id):
        return (block_id.index, 0, "")
    return (block_id.index, 1, block_id.strand_class.value)
