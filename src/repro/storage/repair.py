"""Cluster-level repair manager for entangled storage.

Bridges the core decoder and the storage substrate: it finds the blocks made
unreachable by failed locations, runs round-based repair (blocks repaired in
one round become inputs of the next), writes the rebuilt payloads to healthy
locations and accounts for the work performed (blocks read and written,
rounds, single-failure fraction) -- the quantities reported by Figs. 11/13 and
Table VI of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.batch_repair import (
    count_new_reads,
    execute_plan,
    plan_inputs,
    plan_round,
)
from repro.core.blocks import BlockId, DataId, is_data
from repro.core.decoder import Decoder
from repro.core.lattice import HelicalLattice
from repro.core.xor import Payload
from repro.exceptions import RepairFailedError
from repro.storage.cluster import StorageCluster
from repro.storage.maintenance import MaintenanceBudget, MaintenancePolicy


@dataclass
class ClusterRepairRound:
    """Work performed during one repair round."""

    number: int
    repaired: List[BlockId] = field(default_factory=list)
    blocks_read: int = 0

    @property
    def count(self) -> int:
        return len(self.repaired)


@dataclass
class ClusterRepairReport:
    """Outcome of a cluster repair run."""

    policy: MaintenancePolicy
    rounds: List[ClusterRepairRound] = field(default_factory=list)
    unrecovered: List[BlockId] = field(default_factory=list)
    skipped: List[BlockId] = field(default_factory=list)

    @property
    def round_count(self) -> int:
        return len(self.rounds)

    @property
    def repaired_count(self) -> int:
        return sum(round_.count for round_ in self.rounds)

    @property
    def blocks_read(self) -> int:
        return sum(round_.blocks_read for round_ in self.rounds)

    @property
    def data_loss(self) -> int:
        """Data blocks that could not be repaired (the Fig. 11 metric)."""
        return sum(1 for block_id in self.unrecovered if is_data(block_id))

    @property
    def single_failure_fraction(self) -> float:
        """Fraction of repaired data blocks fixed in the first round (Fig. 13)."""
        data_repaired = [
            block_id
            for round_ in self.rounds
            for block_id in round_.repaired
            if is_data(block_id)
        ]
        if not data_repaired:
            return 0.0
        first_round_data = sum(1 for block_id in self.rounds[0].repaired if is_data(block_id))
        return first_round_data / len(data_repaired)

    def summary(self) -> str:
        return (
            f"policy={self.policy.value}: repaired {self.repaired_count} blocks in "
            f"{self.round_count} rounds ({self.blocks_read} reads); "
            f"data loss {self.data_loss}, {len(self.unrecovered)} blocks unrecovered"
        )


class ClusterRepairManager:
    """Runs round-based repair of an entangled lattice stored on a cluster."""

    def __init__(
        self,
        lattice: HelicalLattice,
        cluster: StorageCluster,
        block_size: int,
        policy: MaintenancePolicy = MaintenancePolicy.FULL,
        budget: Optional[MaintenanceBudget] = None,
    ) -> None:
        self._lattice = lattice
        self._cluster = cluster
        self._block_size = block_size
        self._policy = policy
        self._budget = budget or MaintenanceBudget.unlimited()

    # ------------------------------------------------------------------
    # Work discovery
    # ------------------------------------------------------------------
    def missing_blocks(self) -> Set[BlockId]:
        """Blocks of the lattice that are currently unreachable."""
        return {
            block_id
            for block_id in self._cluster.unavailable_blocks()
            if self._lattice.has_block(block_id)
        }

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def repair(self, max_rounds: int = 1000, batched: bool = True) -> ClusterRepairReport:
        """Repair the missing blocks according to the maintenance policy.

        The default (``batched=True``) plans every round up front
        (:func:`~repro.core.batch_repair.plan_round`), bulk-fetches the plan's
        surviving inputs through :meth:`StorageCluster.try_get_many` and
        reconstructs all of the round's targets in one matrix XOR pass; the
        rebuilt payloads are written back with one grouped
        :meth:`StorageCluster.relocate_many` call.  The recovered bytes and
        the relocation targets are identical to the sequential per-block path
        (``batched=False``, kept as the equivalence and benchmark reference);
        only the read accounting differs: the batched path counts every
        *distinct* payload the run obtained, so a surviving block feeding
        several dependent repairs is no longer re-counted per dependent.
        """
        report = ClusterRepairReport(policy=self._policy)
        pending = self.missing_blocks()
        initially_missing = frozenset(pending)
        report.skipped = sorted(
            (block_id for block_id in pending if not self._policy.repairs_block(block_id)),
            key=_sort_key,
        )
        pending = {
            block_id for block_id in pending if self._policy.repairs_block(block_id)
        }
        if not pending:
            return report
        if not batched:
            return self._repair_sequential(report, pending, max_rounds)

        # Repaired payloads are written to healthy locations; within a round
        # the planner only sees blocks available before the round started.
        repaired_overlay: Dict[BlockId, Payload] = {}
        payload_cache: Dict[BlockId, Payload] = {}
        read_ids: Set[BlockId] = set()
        avoid = tuple(self._cluster.unavailable_locations())
        # Set-based availability oracle: locations do not change during a
        # repair run, so a stored block is reachable exactly when it was not
        # part of the initial missing set or an earlier round rebuilt it
        # (the overlay).  A stale positive (e.g. a location dying mid-run)
        # only costs a failed fetch; the step filter below pushes the
        # affected target to a later round.  The base set is built once so
        # the planner probes at C dictionary speed.
        reachable_base = {
            block_id
            for block_id in self._cluster.block_ids()
            if block_id not in initially_missing
        }
        round_number = 0
        while pending and round_number < max_rounds:
            round_number += 1
            if not self._budget.allows_round(round_number):
                break
            overlay_snapshot = dict(repaired_overlay)
            reachable = reachable_base | overlay_snapshot.keys()

            steps = plan_round(
                self._lattice, sorted(pending, key=_sort_key), reachable.__contains__
            )
            steps = steps[: self._budget.clip_round(len(steps))]
            if not steps:
                break
            wanted = [
                block_id
                for block_id in plan_inputs(steps)
                if block_id not in overlay_snapshot and block_id not in payload_cache
            ]
            fetch_missed = False
            for block_id, payload in zip(wanted, self._cluster.try_get_many(wanted)):
                if payload is not None:
                    payload_cache[block_id] = payload
                else:
                    fetch_missed = True
            if fetch_missed:
                # A location dying between the plan and the fetch can leave a
                # step without inputs; push its target back to a later round.
                steps = [
                    step
                    for step in steps
                    if all(
                        block_id in overlay_snapshot or block_id in payload_cache
                        for block_id in step.inputs()
                    )
                ]
                if not steps:
                    break
            new_reads, fresh = count_new_reads(steps, read_ids)
            read_ids |= fresh
            # The plan's inputs all resolved, so one merged mapping serves
            # the gather at C lookup speed (the overlay wins on overlap).
            merged = {**payload_cache, **overlay_snapshot}
            recovered = execute_plan(steps, merged.__getitem__, self._block_size)
            self._cluster.relocate_many(recovered.items(), avoid=avoid)
            repaired_overlay.update(recovered)
            round_report = ClusterRepairRound(
                number=round_number,
                repaired=list(recovered),
                blocks_read=new_reads,
            )
            pending.difference_update(recovered)
            report.rounds.append(round_report)
        report.unrecovered = sorted(pending, key=_sort_key)
        return report

    def _repair_sequential(
        self,
        report: ClusterRepairReport,
        pending: Set[BlockId],
        max_rounds: int,
    ) -> ClusterRepairReport:
        """The historical per-block repair loop (one decoder call per target).

        Kept verbatim as the reference implementation: the batched path must
        recover byte-identical payloads onto identical locations, and the
        speedup benchmark measures against exactly this loop.
        """
        # Repaired payloads are written to healthy locations; within a round
        # the decoder only sees blocks available before the round started.
        repaired_overlay: Dict[BlockId, Payload] = {}
        avoid = tuple(self._cluster.unavailable_locations())
        round_number = 0
        while pending and round_number < max_rounds:
            round_number += 1
            if not self._budget.allows_round(round_number):
                break
            overlay_snapshot = dict(repaired_overlay)
            reads = [0]

            def source(
                block_id: BlockId,
                _snapshot: Dict[BlockId, Payload] = overlay_snapshot,
                _reads: List[int] = reads,
            ) -> Optional[Payload]:
                if _snapshot.get(block_id) is not None:
                    _reads[0] += 1
                    return _snapshot[block_id]
                payload = self._cluster.try_get_block(block_id)
                if payload is not None:
                    _reads[0] += 1
                return payload

            decoder = Decoder(self._lattice, source, self._block_size, max_depth=0)
            round_report = ClusterRepairRound(number=round_number)
            planned = sorted(pending, key=_sort_key)
            budget_cap = self._budget.clip_round(len(planned))
            for block_id in planned:
                if round_report.count >= budget_cap:
                    break
                try:
                    payload = decoder.repair(block_id)
                except RepairFailedError:
                    continue
                self._cluster.relocate(block_id, payload, avoid=avoid)
                repaired_overlay[block_id] = payload
                round_report.repaired.append(block_id)
            round_report.blocks_read = reads[0]
            if not round_report.repaired:
                break
            for block_id in round_report.repaired:
                pending.discard(block_id)
            report.rounds.append(round_report)
        report.unrecovered = sorted(pending, key=_sort_key)
        return report

    def repair_single(self, block_id: BlockId) -> Tuple[Payload, int]:
        """Repair one block on demand; returns the payload and the blocks read."""
        reads = [0]

        def source(requested: BlockId) -> Optional[Payload]:
            payload = self._cluster.try_get_block(requested)
            if payload is not None:
                reads[0] += 1
            return payload

        decoder = Decoder(self._lattice, source, self._block_size)
        payload = decoder.repair(block_id)
        self._cluster.relocate(
            block_id, payload, avoid=tuple(self._cluster.unavailable_locations())
        )
        return payload, reads[0]


def _sort_key(block_id: BlockId) -> Tuple[int, int, str]:
    if is_data(block_id):
        return (block_id.index, 0, "")
    return (block_id.index, 1, block_id.strand_class.value)
