"""Failure models: disasters, correlated failures and churn.

The paper's evaluation applies *disasters*: a fraction of the storage
locations (10% to 50%) becomes unavailable at once, modelling catastrophic
correlated failures, massive peer departures or whole-rack outages.  This
module generates such scenarios (plus a few richer ones used by the examples
and the extension benchmarks) and applies them to a
:class:`repro.storage.cluster.StorageCluster`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import InvalidParametersError
from repro.storage.cluster import StorageCluster
from repro.storage.topology import Topology, iter_targets

#: Disaster sizes (fraction of unavailable locations) used throughout the paper.
PAPER_DISASTER_SIZES = (0.10, 0.20, 0.30, 0.40, 0.50)


@dataclass(frozen=True)
class Disaster:
    """A set of storage locations that become unavailable simultaneously.

    ``label`` carries the human-readable origin of a targeted disaster
    (``"site:0"``, ``"rack:eu/1"``); it stays empty for sampled disasters.
    """

    failed_locations: tuple
    destructive: bool = False
    label: str = ""

    @property
    def size(self) -> int:
        return len(self.failed_locations)

    def apply(self, cluster: StorageCluster) -> None:
        if self.destructive:
            cluster.wipe_locations(self.failed_locations)
        else:
            cluster.fail_locations(self.failed_locations)

    def revert(self, cluster: StorageCluster) -> None:
        """Bring the failed locations back (only meaningful when not destructive)."""
        if not self.destructive:
            cluster.restore_locations(self.failed_locations)


def disaster_for_fraction(
    location_count: int,
    fraction: float,
    rng: Optional[np.random.Generator] = None,
    destructive: bool = False,
) -> Disaster:
    """Sample a disaster hitting ``fraction`` of the locations uniformly at random."""
    if not 0.0 <= fraction <= 1.0:
        raise InvalidParametersError("disaster fraction must lie in [0, 1]")
    rng = rng or np.random.default_rng(0)
    count = int(round(location_count * fraction))
    failed = tuple(sorted(rng.choice(location_count, size=count, replace=False).tolist()))
    return Disaster(failed_locations=failed, destructive=destructive)


def disaster_series(
    location_count: int,
    fractions: Sequence[float] = PAPER_DISASTER_SIZES,
    seed: int = 0,
    destructive: bool = False,
) -> List[Disaster]:
    """One disaster per fraction, each drawn independently (paper, Figs. 11-13)."""
    disasters = []
    for offset, fraction in enumerate(fractions):
        rng = np.random.default_rng(seed + offset)
        disasters.append(
            disaster_for_fraction(location_count, fraction, rng, destructive)
        )
    return disasters


def disaster_for_target(
    topology: Topology, target: Union[str, Iterable[str]], destructive: bool = False
) -> Disaster:
    """A disaster taking down whole topology targets (sites, racks, nodes).

    ``target`` is one target string (``"site:0"``, ``"rack:eu/1"``,
    ``"node:5"``) or an iterable of them; the failed set is the union,
    resolved through :meth:`Topology.locations_for_target`.
    """
    targets = [target] if isinstance(target, str) else list(target)
    if not targets:
        raise InvalidParametersError("disaster_for_target needs at least one target")
    return Disaster(
        failed_locations=iter_targets(topology, targets),
        destructive=destructive,
        label=",".join(targets),
    )


@dataclass(frozen=True)
class CorrelatedFailureDomains:
    """Groups of locations that fail together (racks, data centres, regions).

    :meth:`from_topology` derives the groups from an explicit
    :class:`~repro.storage.topology.Topology`; :meth:`evenly` remains as the
    legacy shim that slices ``location_count`` anonymous locations into
    equal contiguous domains (exactly what a flat topology's sites would be).
    """

    domains: tuple

    @classmethod
    def from_topology(
        cls, topology: Topology, level: str = "site"
    ) -> "CorrelatedFailureDomains":
        """Failure domains of a topology at the given level (site/rack/node)."""
        return cls(domains=topology.domains(level))

    @classmethod
    def evenly(cls, location_count: int, domain_count: int) -> "CorrelatedFailureDomains":
        if domain_count < 1 or domain_count > location_count:
            raise InvalidParametersError(
                "domain_count must lie between 1 and the number of locations"
            )
        domains: List[tuple] = []
        base = location_count // domain_count
        extra = location_count % domain_count
        start = 0
        for domain_index in range(domain_count):
            size = base + (1 if domain_index < extra else 0)
            domains.append(tuple(range(start, start + size)))
            start += size
        return cls(domains=tuple(domains))

    def domain_disaster(self, domain_indexes: Iterable[int]) -> Disaster:
        """A disaster taking down whole failure domains at once."""
        failed: List[int] = []
        for domain_index in domain_indexes:
            failed.extend(self.domains[domain_index])
        return Disaster(failed_locations=tuple(sorted(failed)))


@dataclass
class ChurnEvent:
    """One step of a churn trace: locations leaving and returning."""

    time: int
    departures: tuple = ()
    arrivals: tuple = ()


@dataclass
class ChurnTrace:
    """A sequence of churn events, modelling a p2p network's instability.

    Used by the extension benchmarks to study redundancy decay under
    continuous, uncorrelated unavailability (as opposed to the one-shot
    disasters of the paper's main evaluation).
    """

    events: List[ChurnEvent] = field(default_factory=list)

    @classmethod
    def poisson(
        cls,
        location_count: int,
        steps: int,
        departure_rate: float,
        return_rate: float,
        seed: int = 0,
    ) -> "ChurnTrace":
        if departure_rate < 0 or return_rate < 0:
            raise InvalidParametersError("rates must be non-negative")
        rng = np.random.default_rng(seed)
        offline: set = set()
        events: List[ChurnEvent] = []
        for time in range(steps):
            online = [loc for loc in range(location_count) if loc not in offline]
            departures = tuple(
                int(loc) for loc in online if rng.random() < departure_rate
            )
            arrivals = tuple(
                int(loc) for loc in list(offline) if rng.random() < return_rate
            )
            offline.update(departures)
            offline.difference_update(arrivals)
            events.append(ChurnEvent(time=time, departures=departures, arrivals=arrivals))
        return cls(events=events)

    def replay(self, cluster: StorageCluster, until: Optional[int] = None) -> None:
        """Apply the trace to a cluster, event by event."""
        for event in self.events:
            if until is not None and event.time >= until:
                break
            cluster.fail_locations(event.departures)
            cluster.restore_locations(event.arrivals)

    # ------------------------------------------------------------------
    # Serialisation (consumed by `repro-experiments simulate --churn`)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialise the trace as JSON (one object per event)."""
        import json

        return json.dumps(
            {
                "events": [
                    {
                        "time": event.time,
                        "departures": list(event.departures),
                        "arrivals": list(event.arrivals),
                    }
                    for event in self.events
                ]
            },
            indent=1,
        )

    @classmethod
    def from_json(cls, text: str) -> "ChurnTrace":
        """Parse a trace serialised with :meth:`to_json`."""
        import json

        try:
            document = json.loads(text)
            events = [
                ChurnEvent(
                    time=event["time"],
                    departures=tuple(int(loc) for loc in event.get("departures", ())),
                    arrivals=tuple(int(loc) for loc in event.get("arrivals", ())),
                )
                for event in document["events"]
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise InvalidParametersError(f"malformed churn trace JSON: {exc}") from exc
        # Hand-edited traces may list events out of order; replay semantics
        # (and the engine's event loop) assume a time-sorted timeline.
        events.sort(key=lambda event: event.time)
        return cls(events=events)

    def save(self, path: str) -> None:
        """Write the trace to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "ChurnTrace":
        """Read a JSON trace written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as stream:
            return cls.from_json(stream.read())
