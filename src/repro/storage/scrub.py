"""Integrity scrubbing and tamper detection over an entangled cluster.

Section III-B describes the anti-tampering property of AE codes: because every
data block propagates into ``alpha`` strands, an attacker who silently
modifies one block leaves the entanglement equations of those strands
inconsistent unless they also recompute every parity up to the strand
extremities.  This module operationalises that property:

* a :class:`ChecksumManifest` records CRC32/SHA-256 fingerprints at write time
  (the conventional, metadata-based defence);
* a :class:`Scrubber` walks the lattice and checks, for every edge,

      ``p_{i,j} == d_i XOR p_{h,i}``

  (the *entanglement equation*); checksum and equation violations become
  :class:`ScrubFinding` entries;
* attribution: a block whose *every* incident equation is violated is flagged
  as the likely tampered block (a data block participates in ``alpha``
  equations as creator, a parity in at most two);
* :meth:`Scrubber.repair_block` rebuilds a flagged block from consistent
  neighbours and rewrites it, restoring the lattice invariant.

The scrubber works on any object exposing the small block-source interface of
:class:`repro.storage.cluster.StorageCluster` (``try_get_block`` /
``put_block`` / ``location_of``), so it can run against the entangled storage
system, the RAID-AE array or a bare cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.blocks import Block, BlockId, DataId, ParityId, is_data
from repro.core.lattice import HelicalLattice
from repro.core.xor import Payload, as_payload, xor_payloads, zero_payload
from repro.exceptions import IntegrityError, RepairFailedError, UnknownBlockError
from repro.storage.cluster import StorageCluster

__all__ = [
    "ChecksumManifest",
    "ScrubFinding",
    "ScrubReport",
    "Scrubber",
]


# ----------------------------------------------------------------------
# Checksum manifest
# ----------------------------------------------------------------------
class ChecksumManifest:
    """Fingerprints of every block recorded at write time."""

    def __init__(self) -> None:
        self._checksums: Dict[BlockId, int] = {}
        self._digests: Dict[BlockId, str] = {}

    def __len__(self) -> int:
        return len(self._checksums)

    def __contains__(self, block_id: BlockId) -> bool:
        return block_id in self._checksums

    def record(self, block: Block) -> None:
        """Record (or refresh) the fingerprint of a block."""
        self._checksums[block.block_id] = block.checksum()
        self._digests[block.block_id] = block.digest()

    def record_payload(self, block_id: BlockId, payload: Payload) -> None:
        self.record(Block(block_id=block_id, payload=payload))

    def forget(self, block_id: BlockId) -> None:
        self._checksums.pop(block_id, None)
        self._digests.pop(block_id, None)

    def expected_checksum(self, block_id: BlockId) -> int:
        if block_id not in self._checksums:
            raise UnknownBlockError(f"no checksum recorded for {block_id!r}")
        return self._checksums[block_id]

    def expected_digest(self, block_id: BlockId) -> str:
        if block_id not in self._digests:
            raise UnknownBlockError(f"no digest recorded for {block_id!r}")
        return self._digests[block_id]

    def matches(self, block_id: BlockId, payload: Payload) -> bool:
        """True when ``payload`` matches the recorded fingerprint of ``block_id``."""
        if block_id not in self._checksums:
            raise UnknownBlockError(f"no checksum recorded for {block_id!r}")
        block = Block(block_id=block_id, payload=payload)
        return (
            block.checksum() == self._checksums[block_id]
            and block.digest() == self._digests[block_id]
        )

    def block_ids(self) -> List[BlockId]:
        return list(self._checksums)


# ----------------------------------------------------------------------
# Findings and report
# ----------------------------------------------------------------------
#: Kinds of findings a scrub can produce.
MISSING = "missing"
CHECKSUM_MISMATCH = "checksum-mismatch"
EQUATION_VIOLATED = "equation-violated"
TAMPER_SUSPECT = "tamper-suspect"


@dataclass(frozen=True)
class ScrubFinding:
    """One anomaly discovered by the scrubber."""

    kind: str
    block_id: BlockId
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        suffix = f" ({self.detail})" if self.detail else ""
        return f"[{self.kind}] {self.block_id!r}{suffix}"


@dataclass
class ScrubReport:
    """Outcome of a scrub pass."""

    blocks_checked: int = 0
    equations_checked: int = 0
    findings: List[ScrubFinding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def of_kind(self, kind: str) -> List[ScrubFinding]:
        return [finding for finding in self.findings if finding.kind == kind]

    @property
    def suspects(self) -> List[BlockId]:
        """Blocks attributed as tampered/corrupted (deduplicated, stable order)."""
        seen: Set[BlockId] = set()
        ordered: List[BlockId] = []
        for finding in self.findings:
            if finding.kind in (TAMPER_SUSPECT, CHECKSUM_MISMATCH):
                if finding.block_id not in seen:
                    seen.add(finding.block_id)
                    ordered.append(finding.block_id)
        return ordered

    def summary(self) -> str:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.kind] = counts.get(finding.kind, 0) + 1
        parts = ", ".join(f"{kind}: {count}" for kind, count in sorted(counts.items()))
        return (
            f"scrubbed {self.blocks_checked} blocks / {self.equations_checked} equations; "
            + (parts if parts else "no anomalies")
        )


# ----------------------------------------------------------------------
# Scrubber
# ----------------------------------------------------------------------
class Scrubber:
    """Walks the lattice verifying checksums and entanglement equations."""

    def __init__(
        self,
        lattice: HelicalLattice,
        cluster: StorageCluster,
        block_size: int,
        manifest: Optional[ChecksumManifest] = None,
    ) -> None:
        self._lattice = lattice
        self._cluster = cluster
        self._block_size = block_size
        self._manifest = manifest

    @property
    def manifest(self) -> Optional[ChecksumManifest]:
        return self._manifest

    # ------------------------------------------------------------------
    # Fetch helpers
    # ------------------------------------------------------------------
    def _fetch(self, block_id: BlockId) -> Optional[Payload]:
        payload = self._cluster.try_get_block(block_id)
        if payload is None:
            return None
        return as_payload(payload, self._block_size)

    # ------------------------------------------------------------------
    # Individual checks
    # ------------------------------------------------------------------
    def verify_checksums(self, block_ids: Optional[Iterable[BlockId]] = None) -> List[ScrubFinding]:
        """Compare stored payloads against the manifest fingerprints."""
        if self._manifest is None:
            return []
        findings: List[ScrubFinding] = []
        targets = list(block_ids) if block_ids is not None else self._manifest.block_ids()
        for block_id in targets:
            if block_id not in self._manifest:
                continue
            payload = self._fetch(block_id)
            if payload is None:
                findings.append(ScrubFinding(MISSING, block_id, "block unreachable"))
                continue
            if not self._manifest.matches(block_id, payload):
                findings.append(
                    ScrubFinding(CHECKSUM_MISMATCH, block_id, "payload fingerprint changed")
                )
        return findings

    def equation_blocks(self, creator: int, parity: ParityId) -> List[BlockId]:
        """Blocks participating in the entanglement equation of ``parity``."""
        input_parity = self._lattice.input_parity(creator, parity.strand_class)
        blocks: List[BlockId] = [DataId(creator), parity]
        if input_parity is not None:
            blocks.insert(1, input_parity)
        return blocks

    def check_equation(self, parity: ParityId) -> Optional[bool]:
        """Check ``p_{i,j} == d_i XOR p_{h,i}`` for one edge.

        Returns ``True`` when the equation holds, ``False`` when it is
        violated, and ``None`` when any participant is unreachable (the
        equation cannot be evaluated).
        """
        creator = parity.index
        data_payload = self._fetch(DataId(creator))
        parity_payload = self._fetch(parity)
        if data_payload is None or parity_payload is None:
            return None
        input_parity = self._lattice.input_parity(creator, parity.strand_class)
        if input_parity is None:
            input_payload: Payload = zero_payload(self._block_size)
        else:
            fetched = self._fetch(input_parity)
            if fetched is None:
                return None
            input_payload = fetched
        expected = xor_payloads(data_payload, input_payload)
        return bool(np.array_equal(expected, parity_payload))

    def verify_equations(
        self, creators: Optional[Sequence[int]] = None
    ) -> Tuple[List[ScrubFinding], Dict[BlockId, Tuple[int, int]], int]:
        """Check every entanglement equation (optionally restricted to creators).

        Returns the violation findings, a per-block ``(violated, evaluated)``
        counter used for attribution, and the number of equations that could
        actually be evaluated (all participants reachable).
        """
        findings: List[ScrubFinding] = []
        participation: Dict[BlockId, Tuple[int, int]] = {}
        evaluated_equations = 0
        targets = creators if creators is not None else range(1, self._lattice.size + 1)
        for creator in targets:
            for strand_class in self._lattice.params.strand_classes:
                parity = ParityId(creator, strand_class)
                verdict = self.check_equation(parity)
                if verdict is None:
                    continue
                evaluated_equations += 1
                blocks = self.equation_blocks(creator, parity)
                for block_id in blocks:
                    violated, evaluated = participation.get(block_id, (0, 0))
                    participation[block_id] = (violated + (0 if verdict else 1), evaluated + 1)
                if not verdict:
                    findings.append(
                        ScrubFinding(
                            EQUATION_VIOLATED,
                            parity,
                            f"p[{creator},{strand_class.value}] != d{creator} XOR input parity",
                        )
                    )
        return findings, participation, evaluated_equations

    # ------------------------------------------------------------------
    # Full scrub with attribution
    # ------------------------------------------------------------------
    def scrub(self, creators: Optional[Sequence[int]] = None) -> ScrubReport:
        """Run checksum checks (when a manifest exists) and equation checks.

        Attribution rule: a block is a tamper suspect when every equation it
        participates in is violated and it participates in at least one.  With
        ``alpha >= 2`` a single tampered block is always attributable because
        its neighbours' other equations stay consistent.
        """
        report = ScrubReport()
        report.findings.extend(self.verify_checksums())
        equation_findings, participation, evaluated_equations = self.verify_equations(creators)
        report.findings.extend(equation_findings)
        report.equations_checked = evaluated_equations
        report.blocks_checked = len(participation)
        already_flagged = {
            finding.block_id
            for finding in report.findings
            if finding.kind == CHECKSUM_MISMATCH
        }
        for block_id, (violated, evaluated) in sorted(
            participation.items(), key=_block_order
        ):
            if evaluated and violated == evaluated and violated > 0:
                if block_id in already_flagged:
                    continue
                report.findings.append(
                    ScrubFinding(
                        TAMPER_SUSPECT,
                        block_id,
                        f"all {evaluated} incident entanglement equations violated",
                    )
                )
        return report

    # ------------------------------------------------------------------
    # Repair of corrupted blocks
    # ------------------------------------------------------------------
    def repair_block(self, block_id: BlockId) -> Payload:
        """Recompute a corrupted block from consistent neighbours and rewrite it.

        Data blocks are rebuilt from a pp-tuple (two adjacent parities of one
        strand); parities from a dp-tuple.  The repaired payload is written
        back to the block's existing location and the manifest (if any) is
        refreshed.
        """
        candidate = self._recompute(block_id)
        if candidate is None:
            raise RepairFailedError(block_id, "no consistent neighbours available")
        location = self._cluster.location_of(block_id)
        self._cluster.location(location).put(block_id, candidate)
        if self._manifest is not None:
            self._manifest.record_payload(block_id, candidate)
        return candidate

    def repair_suspects(self, report: Optional[ScrubReport] = None) -> List[BlockId]:
        """Repair every suspect of ``report`` (running a fresh scrub when omitted)."""
        report = report if report is not None else self.scrub()
        repaired: List[BlockId] = []
        for block_id in report.suspects:
            try:
                self.repair_block(block_id)
            except RepairFailedError:
                continue
            repaired.append(block_id)
        return repaired

    def _recompute(self, block_id: BlockId) -> Optional[Payload]:
        if is_data(block_id):
            for option in self._lattice.data_repair_options(block_id.index):
                output_payload = self._fetch(option.output_parity)
                if output_payload is None:
                    continue
                if option.input_parity is None:
                    return output_payload
                input_payload = self._fetch(option.input_parity)
                if input_payload is None:
                    continue
                return xor_payloads(input_payload, output_payload)
            return None
        parity: ParityId = block_id  # type: ignore[assignment]
        creator = parity.index
        data_payload = self._fetch(DataId(creator))
        if data_payload is None:
            return None
        input_parity = self._lattice.input_parity(creator, parity.strand_class)
        if input_parity is None:
            return data_payload
        input_payload = self._fetch(input_parity)
        if input_payload is None:
            return None
        return xor_payloads(data_payload, input_payload)


def _block_order(item: Tuple[BlockId, Tuple[int, int]]) -> Tuple[int, int, str]:
    block_id, _ = item
    if isinstance(block_id, DataId):
        return (0, block_id.index, "")
    return (1, block_id.index, block_id.strand_class.value)
