"""Placement policies: mapping blocks to storage locations over a topology.

The paper evaluates random placement explicitly ("blocks are distributed in n
locations using random placements") and discusses a round-robin policy from
earlier work that guarantees neighbouring lattice elements land in different
failure domains (Sec. V-C, "Block Placements").  This module provides both,
plus three topology-aware policies, behind a string-keyed registry::

    from repro.storage import placement
    from repro.storage.topology import Topology

    topology = Topology.parse("sites=3,racks=2,nodes=4")
    policy = placement.get("spread-domains", topology)

Every policy takes a :class:`~repro.storage.topology.Topology` (a bare
``location_count`` integer is accepted everywhere and treated as the flat
single-site shim):

* ``random`` -- uniform hash placement, the paper's simulation setup;
* ``round-robin`` -- consecutive lattice elements on consecutive locations;
* ``strand-aware`` -- an AE block never shares a location with the parities
  of its pp-tuples;
* ``spread-domains`` -- never co-locate a stripe's blocks, or an AE block
  and its alpha parities, in one *failure domain* (site when the topology
  has several sites, else rack), so a whole-domain disaster removes at most
  ``ceil(width / domains)`` blocks of any repair group;
* ``weighted`` -- random placement proportional to per-node capacity
  weights (heterogeneous nodes).
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.blocks import BlockId, DataId, ParityId, is_data
from repro.core.parameters import AEParameters, STRAND_CLASS_ORDER
from repro.exceptions import PlacementError
from repro.storage.topology import Topology

TopologyLike = Union[Topology, int]


def _as_topology(topology: TopologyLike) -> Topology:
    """Coerce the accepted constructor inputs (legacy int included)."""
    if isinstance(topology, Topology):
        return topology
    if isinstance(topology, (int, np.integer)):
        if topology < 1:
            raise PlacementError("a placement policy needs at least one location")
        return Topology.flat(int(topology))
    raise PlacementError(
        f"cannot interpret {topology!r} as a topology; expected a Topology "
        "or a location count"
    )


def _hash_fraction(block_id: BlockId, seed: int, salt: bytes = b"") -> float:
    """Deterministic uniform draw in [0, 1) derived from the block identity."""
    digest = hashlib.blake2b(
        salt + repr(block_id).encode("utf-8"),
        key=seed.to_bytes(8, "little", signed=False),
        digest_size=8,
    ).digest()
    return int.from_bytes(digest, "little") / float(1 << 64)


class PlacementPolicy(ABC):
    """Chooses the storage location of every block.

    Policies are constructed over a :class:`Topology`; passing a bare
    ``location_count`` integer (the pre-topology API) builds the flat
    single-site shim, so existing subclasses and call sites keep working.
    """

    def __init__(self, topology: TopologyLike) -> None:
        self._topology = _as_topology(topology)
        self._location_count = self._topology.node_count

    @property
    def location_count(self) -> int:
        return self._location_count

    @property
    def topology(self) -> Topology:
        """The topology this policy places over (flat shim for legacy ints)."""
        return self._topology

    @abstractmethod
    def location_for(self, block_id: BlockId) -> int:
        """Location index (0-based) assigned to ``block_id``."""

    def locations_for(self, block_ids: Sequence[BlockId]) -> List[int]:
        """Bulk variant of :meth:`location_for`, one entry per block.

        The default delegates per block; policies override it to amortise
        per-call overhead on the batched ingest path.  Results must be
        identical to calling :meth:`location_for` on each id.
        """
        location_for = self.location_for
        return [location_for(block_id) for block_id in block_ids]

    def spread_level(self) -> Optional[str]:
        """Failure-domain level this policy actively spreads over, if any.

        Domain-aware repair (``StorageCluster.relocate``) avoids the failed
        block's domain at this level; ``None`` means the policy has no
        domain-spreading contract.
        """
        return None

    def relocation_rank(self, block_id: BlockId, domain_index: int) -> int:
        """Preference (lower is better) for re-placing ``block_id`` into a
        fallback domain when repair cannot use its assigned location.

        Policies with a spreading contract rank domains that hold other
        members of the block's repair group *worse*, so a rebuilt block does
        not silently collapse the group into one failure domain.  The
        default expresses no preference.
        """
        return 0

    def describe(self) -> str:
        return f"{type(self).__name__}(n={self._location_count})"


class RandomPlacement(PlacementPolicy):
    """Uniform random placement, deterministic given the seed.

    This is the policy used for the paper's disaster-recovery simulations;
    the randomness is derived from the block identity so that every component
    (and every rerun) agrees on the mapping.
    """

    def __init__(self, topology: TopologyLike, seed: int = 0) -> None:
        super().__init__(topology)
        self._seed = seed

    def location_for(self, block_id: BlockId) -> int:
        digest = hashlib.blake2b(
            repr(block_id).encode("utf-8"),
            key=self._seed.to_bytes(8, "little", signed=False),
            digest_size=8,
        ).digest()
        return int.from_bytes(digest, "little") % self._location_count


class RoundRobinPlacement(PlacementPolicy):
    """Round-robin placement by lattice position.

    Data block ``d_i`` goes to location ``i mod n``; the parities created by
    ``d_i`` follow on the next locations.  With ``n`` larger than a lattice
    neighbourhood this guarantees that adjacent lattice elements live in
    different failure domains (the assumption of the paper's earlier
    evaluations) -- but note the guarantee is about *locations*, not sites:
    under a multi-site topology a whole repair neighbourhood can land inside
    one site (see ``spread-domains`` for the domain-level guarantee).
    """

    def __init__(
        self, topology: TopologyLike, params: Optional[AEParameters] = None
    ) -> None:
        super().__init__(topology)
        self._params = params

    def location_for(self, block_id: BlockId) -> int:
        alpha = self._params.alpha if self._params is not None else 3
        stride = alpha + 1
        index, lane = _lattice_lane(block_id, alpha)
        return (index * stride + lane) % self._location_count


class StrandAwarePlacement(PlacementPolicy):
    """Places the blocks a repair needs on distinct locations whenever possible.

    A data block and the two parities of each of its pp-tuples are spread over
    different locations, so a single location failure never removes a block
    *and* its cheapest repair path.  Falls back to hashing when the cluster is
    too small.
    """

    def __init__(
        self, topology: TopologyLike, params: AEParameters, seed: int = 0
    ) -> None:
        super().__init__(topology)
        self._params = params
        self._seed = seed
        self._group = params.alpha + 1

    def location_for(self, block_id: BlockId) -> int:
        if self._location_count < 2 * self._group:
            return RandomPlacement(self._location_count, self._seed).location_for(block_id)
        index = block_id.index
        if is_data(block_id):
            lane = 0
        else:
            lane = 1 + list(self._params.strand_classes).index(block_id.strand_class)
        # Interleave lanes across the cluster; consecutive lattice positions
        # rotate through location groups so neighbours do not collide.
        group_index = index % (self._location_count // self._group)
        return (group_index * self._group + lane) % self._location_count


def _lattice_lane(block_id: BlockId, alpha: int) -> Optional[Tuple[int, int]]:
    """(group index, lane) of an AE or stripe block within its repair group.

    AE blocks group by lattice position (data lane 0, one lane per strand
    class); stripe blocks group by stripe (one lane per position).  Anything
    else hashes into a single lane.
    """
    stripe = getattr(block_id, "stripe", None)
    if stripe is not None:
        return int(stripe), int(block_id.position)
    if isinstance(block_id, DataId):
        return block_id.index - 1, 0
    if isinstance(block_id, ParityId):
        return (
            block_id.index - 1,
            1 + STRAND_CLASS_ORDER.index(block_id.strand_class) % alpha,
        )
    digest = hashlib.blake2b(repr(block_id).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little"), 0


class SpreadDomainsPlacement(PlacementPolicy):
    """Never co-locate a repair group inside one failure domain.

    The repair group of an AE data block is the block plus its ``alpha``
    parities; the repair group of a stripe code is the whole stripe.  Lanes
    of one group rotate through the topology's failure domains (site level
    when the topology has several sites, else rack level), so:

    * with at least ``group width`` domains, no two blocks of a group share
      a domain -- a full-domain disaster removes at most one of them;
    * with fewer domains, blocks spread as evenly as possible -- a
      full-domain disaster removes at most ``ceil(width / domains)`` group
      members (e.g. RS(10,4) over 4 sites loses at most 4 blocks per stripe
      and stays decodable).

    Inside the chosen domain the concrete node is a deterministic
    capacity-weighted hash of the block identity, so heterogeneous domains
    fill proportionally.
    """

    def __init__(
        self,
        topology: TopologyLike,
        seed: int = 0,
        level: Optional[str] = None,
        params: Optional[AEParameters] = None,
    ) -> None:
        super().__init__(topology)
        self._seed = seed
        self._params = params
        self._level = level or self.topology.default_level()
        self._domains = self.topology.domains(self._level)
        capacities = self.topology.capacities()
        # Per-domain cumulative capacity for the intra-domain weighted pick.
        self._cumulative = [
            np.cumsum(capacities[list(members)]) for members in self._domains
        ]

    @property
    def level(self) -> str:
        """The failure-domain granularity the policy spreads over."""
        return self._level

    def spread_level(self) -> Optional[str]:
        return self._level

    def domain_for(self, block_id: BlockId) -> int:
        """Failure-domain index assigned to ``block_id``."""
        alpha = self._params.alpha if self._params is not None else 3
        group, lane = _lattice_lane(block_id, alpha)
        return (group + lane) % len(self._domains)

    def relocation_rank(self, block_id: BlockId, domain_index: int) -> int:
        """Prefer fallback domains no member of the block's group maps to.

        An AE repair group is ``alpha + 1`` lanes wide; when the topology has
        spare domains beyond that, a rebuilt block is steered into one, so a
        later disaster of any *single* domain still finds the group spread.
        Stripe groups span every domain whenever ``width >= domains``, in
        which case there is nothing to prefer.
        """
        alpha = self._params.alpha if self._params is not None else 3
        group, lane = _lattice_lane(block_id, alpha)
        width = None
        if isinstance(block_id, (DataId, ParityId)):
            width = alpha + 1
        domain_count = len(self._domains)
        if width is None or width >= domain_count:
            return 0
        occupied = {(group + l) % domain_count for l in range(width)}
        return 1 if domain_index in occupied else 0

    def location_for(self, block_id: BlockId) -> int:
        domain = self.domain_for(block_id)
        members = self._domains[domain]
        if len(members) == 1:
            return members[0]
        cumulative = self._cumulative[domain]
        draw = _hash_fraction(block_id, self._seed, salt=b"spread") * cumulative[-1]
        index = int(np.searchsorted(cumulative, draw, side="right"))
        return members[min(index, len(members) - 1)]

    def describe(self) -> str:
        return (
            f"SpreadDomainsPlacement(n={self._location_count}, "
            f"level={self._level}, domains={len(self._domains)})"
        )


class WeightedPlacement(PlacementPolicy):
    """Random placement proportional to per-node capacity weights.

    A node with capacity 2.0 receives (in expectation) twice the blocks of a
    capacity-1.0 node; with uniform capacities this degenerates to
    :class:`RandomPlacement` statistics.  Deterministic given the seed.
    """

    def __init__(self, topology: TopologyLike, seed: int = 0) -> None:
        super().__init__(topology)
        self._seed = seed
        self._cumulative = np.cumsum(self.topology.capacities())

    def location_for(self, block_id: BlockId) -> int:
        draw = _hash_fraction(block_id, self._seed, salt=b"weighted")
        index = int(
            np.searchsorted(self._cumulative, draw * self._cumulative[-1], side="right")
        )
        return min(index, self._location_count - 1)


class DictionaryPlacement(PlacementPolicy):
    """Explicit placement recorded in a dictionary (used by tests and RAID layouts)."""

    def __init__(self, topology: TopologyLike, mapping: dict) -> None:
        super().__init__(topology)
        self._mapping = dict(mapping)

    def location_for(self, block_id: BlockId) -> int:
        if block_id not in self._mapping:
            raise PlacementError(f"no explicit placement recorded for {block_id!r}")
        return self._mapping[block_id]

    def record(self, block_id: BlockId, location: int) -> None:
        if not 0 <= location < self._location_count:
            raise PlacementError(
                f"location {location} outside 0..{self._location_count - 1}"
            )
        self._mapping[block_id] = location


# ----------------------------------------------------------------------
# The policy registry
# ----------------------------------------------------------------------
#: A factory builds a policy from a topology plus optional context
#: (``params`` -- the AE setting of the scheme being placed, ``seed``,
#: ``level`` -- a domain level override for spread-domains).
PolicyFactory = Callable[..., PlacementPolicy]

_POLICIES: Dict[str, PolicyFactory] = {}


def register(name: str, factory: PolicyFactory) -> None:
    """Register a placement policy under a string key."""
    _POLICIES[name.lower()] = factory


def available() -> List[str]:
    """Registered policy names, sorted."""
    return sorted(_POLICIES)


def get(
    name: str,
    topology: TopologyLike,
    params: Optional[AEParameters] = None,
    seed: int = 0,
    level: Optional[str] = None,
) -> PlacementPolicy:
    """Resolve a policy name to a fresh policy instance over ``topology``.

    ``params`` carries the AE(alpha, s, p) setting when the scheme being
    placed is an entanglement code (policies that do not need it ignore it);
    ``level`` optionally pins the failure-domain granularity of
    ``spread-domains``.
    """
    cleaned = name.strip().lower()
    if cleaned not in _POLICIES:
        raise PlacementError(
            f"unknown placement policy {name!r}; available: "
            + ", ".join(available())
        )
    return _POLICIES[cleaned](
        _as_topology(topology), params=params, seed=seed, level=level
    )


def _random_factory(
    topology: Topology,
    params: Optional[AEParameters] = None,
    seed: int = 0,
    level: Optional[str] = None,
) -> PlacementPolicy:
    return RandomPlacement(topology, seed=seed)


def _round_robin_factory(
    topology: Topology,
    params: Optional[AEParameters] = None,
    seed: int = 0,
    level: Optional[str] = None,
) -> PlacementPolicy:
    return RoundRobinPlacement(topology, params=params)


def _strand_aware_factory(
    topology: Topology,
    params: Optional[AEParameters] = None,
    seed: int = 0,
    level: Optional[str] = None,
) -> PlacementPolicy:
    if params is None:
        raise PlacementError(
            "the 'strand-aware' policy needs the AE(alpha, s, p) parameters "
            "of an entanglement scheme; use 'spread-domains' for stripe codes"
        )
    return StrandAwarePlacement(topology, params, seed=seed)


def _spread_domains_factory(
    topology: Topology,
    params: Optional[AEParameters] = None,
    seed: int = 0,
    level: Optional[str] = None,
) -> PlacementPolicy:
    return SpreadDomainsPlacement(topology, seed=seed, level=level, params=params)


def _weighted_factory(
    topology: Topology,
    params: Optional[AEParameters] = None,
    seed: int = 0,
    level: Optional[str] = None,
) -> PlacementPolicy:
    return WeightedPlacement(topology, seed=seed)


register("random", _random_factory)
register("round-robin", _round_robin_factory)
register("strand-aware", _strand_aware_factory)
register("spread-domains", _spread_domains_factory)
register("weighted", _weighted_factory)


def placement_balance(policy: PlacementPolicy, block_ids: Iterable[BlockId]) -> np.ndarray:
    """Histogram of blocks per location, used to study placement skew.

    The paper reports the mean and standard deviation of blocks per site for
    RS(10,4) with one million data blocks; this helper reproduces those
    statistics for any policy.
    """
    counts = np.zeros(policy.location_count, dtype=np.int64)
    for block_id in block_ids:
        counts[policy.location_for(block_id)] += 1
    return counts


def domain_balance(
    policy: PlacementPolicy, block_ids: Iterable[BlockId], level: str = "site"
) -> np.ndarray:
    """Histogram of blocks per failure domain at the given level."""
    topology = policy.topology
    counts = np.zeros(len(topology.domains(level)), dtype=np.int64)
    for block_id in block_ids:
        counts[topology.domain_of(policy.location_for(block_id), level)] += 1
    return counts
