"""Placement policies: mapping blocks to storage locations.

The paper evaluates random placement explicitly ("blocks are distributed in n
locations using random placements") and discusses a round-robin policy from
earlier work that guarantees neighbouring lattice elements land in different
failure domains (Sec. V-C, "Block Placements").  Both are provided, together
with a strand-aware policy that approximates the round-robin guarantee while
remaining practical, and a deterministic hash-based policy for the
decentralised backup use case.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

import numpy as np

from repro.core.blocks import BlockId, DataId, ParityId, is_data
from repro.core.parameters import AEParameters, STRAND_CLASS_ORDER
from repro.exceptions import PlacementError


class PlacementPolicy(ABC):
    """Chooses the storage location of every block."""

    def __init__(self, location_count: int) -> None:
        if location_count < 1:
            raise PlacementError("a placement policy needs at least one location")
        self._location_count = location_count

    @property
    def location_count(self) -> int:
        return self._location_count

    @abstractmethod
    def location_for(self, block_id: BlockId) -> int:
        """Location index (0-based) assigned to ``block_id``."""

    def locations_for(self, block_ids: Sequence[BlockId]) -> List[int]:
        """Bulk variant of :meth:`location_for`, one entry per block.

        The default delegates per block; policies override it to amortise
        per-call overhead on the batched ingest path.  Results must be
        identical to calling :meth:`location_for` on each id.
        """
        location_for = self.location_for
        return [location_for(block_id) for block_id in block_ids]

    def describe(self) -> str:
        return f"{type(self).__name__}(n={self._location_count})"


class RandomPlacement(PlacementPolicy):
    """Uniform random placement, deterministic given the seed.

    This is the policy used for the paper's disaster-recovery simulations;
    the randomness is derived from the block identity so that every component
    (and every rerun) agrees on the mapping.
    """

    def __init__(self, location_count: int, seed: int = 0) -> None:
        super().__init__(location_count)
        self._seed = seed

    def location_for(self, block_id: BlockId) -> int:
        digest = hashlib.blake2b(
            repr(block_id).encode("utf-8"),
            key=self._seed.to_bytes(8, "little", signed=False),
            digest_size=8,
        ).digest()
        return int.from_bytes(digest, "little") % self._location_count


class RoundRobinPlacement(PlacementPolicy):
    """Round-robin placement by lattice position.

    Data block ``d_i`` goes to location ``i mod n``; the parities created by
    ``d_i`` follow on the next locations.  With ``n`` larger than a lattice
    neighbourhood this guarantees that adjacent lattice elements live in
    different failure domains (the assumption of the paper's earlier
    evaluations).
    """

    def __init__(self, location_count: int, params: Optional[AEParameters] = None) -> None:
        super().__init__(location_count)
        self._params = params

    def location_for(self, block_id: BlockId) -> int:
        alpha = self._params.alpha if self._params is not None else 3
        stride = alpha + 1
        if is_data(block_id):
            offset = 0
        else:
            offset = 1 + STRAND_CLASS_ORDER.index(block_id.strand_class) % alpha
        return ((block_id.index - 1) * stride + offset) % self._location_count


class StrandAwarePlacement(PlacementPolicy):
    """Places the blocks a repair needs on distinct locations whenever possible.

    A data block and the two parities of each of its pp-tuples are spread over
    different locations, so a single location failure never removes a block
    *and* its cheapest repair path.  Falls back to hashing when the cluster is
    too small.
    """

    def __init__(self, location_count: int, params: AEParameters, seed: int = 0) -> None:
        super().__init__(location_count)
        self._params = params
        self._seed = seed
        self._group = params.alpha + 1

    def location_for(self, block_id: BlockId) -> int:
        if self._location_count < 2 * self._group:
            return RandomPlacement(self._location_count, self._seed).location_for(block_id)
        index = block_id.index
        if is_data(block_id):
            lane = 0
        else:
            lane = 1 + list(self._params.strand_classes).index(block_id.strand_class)
        # Interleave lanes across the cluster; consecutive lattice positions
        # rotate through location groups so neighbours do not collide.
        group_index = index % (self._location_count // self._group)
        return (group_index * self._group + lane) % self._location_count


class DictionaryPlacement(PlacementPolicy):
    """Explicit placement recorded in a dictionary (used by tests and RAID layouts)."""

    def __init__(self, location_count: int, mapping: dict) -> None:
        super().__init__(location_count)
        self._mapping = dict(mapping)

    def location_for(self, block_id: BlockId) -> int:
        if block_id not in self._mapping:
            raise PlacementError(f"no explicit placement recorded for {block_id!r}")
        return self._mapping[block_id]

    def record(self, block_id: BlockId, location: int) -> None:
        if not 0 <= location < self._location_count:
            raise PlacementError(
                f"location {location} outside 0..{self._location_count - 1}"
            )
        self._mapping[block_id] = location


def placement_balance(policy: PlacementPolicy, block_ids) -> np.ndarray:
    """Histogram of blocks per location, used to study placement skew.

    The paper reports the mean and standard deviation of blocks per site for
    RS(10,4) with one million data blocks; this helper reproduces those
    statistics for any policy.
    """
    counts = np.zeros(policy.location_count, dtype=np.int64)
    for block_id in block_ids:
        counts[policy.location_for(block_id)] += 1
    return counts
