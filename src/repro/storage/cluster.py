"""A cluster of storage locations with a placement policy.

The cluster is the physical layer beneath the helical lattice: it stores the
encoded blocks, knows which location holds each block, and exposes the
availability view the decoder and the repair manager operate on.

Every location's payloads live on a pluggable backend
(:mod:`repro.storage.backends`): ``backend="memory"`` keeps the historical
in-process behaviour, while ``backend="disk"`` / ``"segment"`` with a
``root`` directory give each location its own durable sub-root
(``<root>/loc-NNNN``).  Opening a cluster over a root that already holds
data rebuilds the block -> location directory by listing each backend, so a
cluster can be closed and reopened with all placements intact.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.core.blocks import Block, BlockId
from repro.core.xor import Payload
from repro.exceptions import PlacementError, UnknownBlockError
from repro.storage import backends as _backends
from repro.storage.block_store import BlockStore
from repro.storage.placement import PlacementPolicy, RandomPlacement
from repro.storage.topology import Topology


@dataclass
class ClusterStats:
    """Aggregate statistics of a cluster.

    ``domain_blocks`` maps failure-domain labels (sites, or racks for a
    single-site topology) to the number of blocks they hold; it stays empty
    for flat single-domain clusters.
    """

    locations: int
    available_locations: int
    blocks: int
    unavailable_blocks: int
    bytes_stored: int
    cache_hits: int = 0
    cache_misses: int = 0
    domain_blocks: Dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        text = (
            f"{self.available_locations}/{self.locations} locations up, "
            f"{self.blocks} blocks ({self.unavailable_blocks} currently unavailable), "
            f"{self.bytes_stored} bytes"
        )
        if self.domain_blocks:
            per_domain = " ".join(
                f"{label}={count}" for label, count in self.domain_blocks.items()
            )
            text = f"{text}; domains: {per_domain}"
        return text


class StorageCluster:
    """``n`` storage locations plus the block -> location mapping.

    The spatial layout of those locations is an explicit
    :class:`~repro.storage.topology.Topology` (site -> rack -> node); the
    legacy ``location_count=N`` form keeps working as the flat single-site
    shim.  Pass ``topology=`` (a ``Topology``, a compact spec string like
    ``"sites=3,racks=2,nodes=4"``, a JSON file path or an int) to make the
    cluster domain-aware: per-domain statistics and repair re-placement that
    avoids the failed block's failure domain.
    """

    def __init__(
        self,
        location_count: Optional[int] = None,
        placement: Optional[PlacementPolicy] = None,
        capacity_blocks: Optional[int] = None,
        backend: str = "memory",
        root: Optional[str] = None,
        cache_blocks: Optional[int] = None,
        topology: Optional[Union[Topology, int, str]] = None,
        **backend_options: object,
    ) -> None:
        resolved = Topology.resolve(topology)
        if resolved is None and placement is not None:
            # Adopt the placement's topology so a policy built over sites and
            # racks makes the cluster domain-aware without repeating the spec.
            resolved = placement.topology
        if resolved is None:
            if location_count is None:
                raise PlacementError(
                    "a cluster needs a location_count, a topology or a placement"
                )
            resolved = Topology.flat(location_count)
        if location_count is not None and location_count != resolved.node_count:
            raise PlacementError(
                f"location_count={location_count} contradicts the topology "
                f"({resolved.node_count} nodes); pass one or the other"
            )
        self._topology = resolved
        location_count = resolved.node_count
        if location_count < 1:
            raise PlacementError("a cluster needs at least one location")
        self._backend_spec = backend
        self._root = root
        self._stores: List[BlockStore] = [
            BlockStore(
                location_id,
                capacity_blocks,
                backend=_backends.get(
                    backend,
                    root=(
                        os.path.join(root, f"loc-{location_id:04d}")
                        if root is not None
                        else None
                    ),
                    **backend_options,
                ),
                cache_blocks=cache_blocks,
            )
            for location_id in range(location_count)
        ]
        self._placement = placement or RandomPlacement(location_count)
        self._domain_cache: Dict[Tuple[str, int], int] = {}
        self._domain_count_cache: Dict[str, int] = {}
        if self._placement.location_count != location_count:
            raise PlacementError(
                "placement policy location count does not match the cluster size"
            )
        # Pre-existing blocks on persistent backends re-seed the directory,
        # so a reopened cluster serves its old placements immediately.  A
        # block found at several locations (a relocated repair whose stale
        # source copy was never reclaimed) keeps the first copy; the
        # duplicates are physically deleted so they cannot leak storage or
        # inflate the byte accounting across reopen cycles.
        self._directory: Dict[BlockId, int] = {}
        for store in self._stores:
            for block_id in store.block_ids():
                if block_id in self._directory:
                    store.delete(block_id)
                else:
                    self._directory[block_id] = store.location_id

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def location_count(self) -> int:
        return len(self._stores)

    @property
    def topology(self) -> Topology:
        """The site -> rack -> node layout of the locations."""
        return self._topology

    @property
    def placement(self) -> PlacementPolicy:
        return self._placement

    def location(self, location_id: int) -> BlockStore:
        return self._stores[location_id]

    def locations(self) -> Iterator[BlockStore]:
        return iter(self._stores)

    def available_locations(self) -> List[int]:
        return [store.location_id for store in self._stores if store.available]

    def unavailable_locations(self) -> List[int]:
        return [store.location_id for store in self._stores if not store.available]

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def fail_locations(self, location_ids: Iterable[int]) -> None:
        for location_id in location_ids:
            self._stores[location_id].fail()

    def wipe_locations(self, location_ids: Iterable[int]) -> None:
        for location_id in location_ids:
            self._stores[location_id].wipe()

    def restore_locations(self, location_ids: Optional[Iterable[int]] = None) -> None:
        """Bring locations back online, dropping stale block copies.

        While a location was down, repair may have rebuilt its blocks onto
        healthy locations (the directory now points elsewhere).  Those stale
        physical copies are reclaimed here so a restore can neither
        resurrect them nor leak their bytes on durable backends.
        """
        targets = (
            list(location_ids)
            if location_ids is not None
            else [store.location_id for store in self._stores]
        )
        for location_id in targets:
            store = self._stores[location_id]
            store.restore()
            for block_id in store.block_ids():
                if self._directory.get(block_id) != location_id:
                    store.delete(block_id)

    # ------------------------------------------------------------------
    # Block operations
    # ------------------------------------------------------------------
    def put_block(self, block: Block, location_id: Optional[int] = None) -> int:
        """Store a block, returning the location chosen for it."""
        if location_id is None:
            location_id = self._placement.location_for(block.block_id)
        self._stores[location_id].put(block.block_id, block.payload)
        self._directory[block.block_id] = location_id
        return location_id

    def put_blocks(self, blocks: Iterable[Block]) -> None:
        for block in blocks:
            self.put_block(block)

    def put_many(self, items: Iterable[Tuple[BlockId, Payload]]) -> int:
        """Bulk write: place and store ``(block_id, payload)`` pairs.

        Placement decisions are computed up front through the policy's bulk
        :meth:`PlacementPolicy.locations_for`, payloads are grouped per
        destination and each location receives one :meth:`BlockStore.put_many`
        call, so per-block Python overhead is amortised over the batch.  The
        directory is updated in bulk.  Returns the number of blocks stored.
        """
        pairs = list(items)
        locations = self._placement.locations_for([block_id for block_id, _ in pairs])
        placed: Dict[int, List[Tuple[BlockId, Payload]]] = {}
        for pair, location_id in zip(pairs, locations):
            placed.setdefault(location_id, []).append(pair)
        stored = 0
        for location_id, group in placed.items():
            stored += self._stores[location_id].put_many(group)
            self._directory.update((block_id, location_id) for block_id, _ in group)
        return stored

    def get_many(self, block_ids: Iterable[BlockId]) -> List[Payload]:
        """Bulk read: fetch payloads grouped per location.

        Raises when a block is unknown to the cluster or its location is down
        (mirrors :meth:`get_block`); results come back in request order.
        """
        wanted = list(block_ids)
        grouped: Dict[int, List[int]] = {}
        for position, block_id in enumerate(wanted):
            grouped.setdefault(self.location_of(block_id), []).append(position)
        payloads: List[Optional[Payload]] = [None] * len(wanted)
        for location_id, positions in grouped.items():
            fetched = self._stores[location_id].get_many(
                [wanted[position] for position in positions]
            )
            for position, payload in zip(positions, fetched):
                payloads[position] = payload
        return payloads  # type: ignore[return-value]

    def get_block(self, block_id: BlockId) -> Payload:
        """Return a payload; raises if the block is unknown or its location is down."""
        location_id = self.location_of(block_id)
        return self._stores[location_id].get(block_id)

    def try_get_block(self, block_id: BlockId) -> Optional[Payload]:
        """Availability-aware fetch used by the decoder (``None`` when unreachable)."""
        location_id = self._directory.get(block_id)
        if location_id is None:
            return None
        return self._stores[location_id].try_get(block_id)

    def try_get_many(self, block_ids: Iterable[BlockId]) -> List[Optional[Payload]]:
        """Bulk :meth:`try_get_block`: payloads in request order, ``None`` for
        blocks that are unknown or whose location is down.

        Requests are grouped per location so each store sees one
        :meth:`BlockStore.try_get_many` call -- the read path of batched
        repair and degraded document reads.
        """
        wanted = list(block_ids)
        payloads: List[Optional[Payload]] = [None] * len(wanted)
        grouped: Dict[int, List[int]] = {}
        for position, block_id in enumerate(wanted):
            location_id = self._directory.get(block_id)
            if location_id is not None:
                grouped.setdefault(location_id, []).append(position)
        for location_id, positions in grouped.items():
            fetched = self._stores[location_id].try_get_many(
                [wanted[position] for position in positions]
            )
            for position, payload in zip(positions, fetched):
                payloads[position] = payload
        return payloads

    def block_source(self) -> "ClusterBlockSource":
        """A :class:`ClusterBlockSource` over this cluster.

        Schemes receive plain callables (:data:`~repro.schemes.base.BlockFetcher`);
        this object *is* such a callable, but additionally advertises the
        bulk fetch and the availability oracle that let batched repair plan a
        whole round without fetching block by block.  A bound method cannot
        carry those extra hooks, hence the small wrapper class.
        """
        return ClusterBlockSource(self)

    def delete_block(self, block_id: BlockId) -> int:
        """Remove a block from the cluster, returning the location that held it.

        Both the placement index (directory) entry and the physical payload
        are removed -- even when the location is currently marked
        unavailable: the availability flag models *request serving* during a
        simulated outage, while delete is a management-plane reclamation, and
        leaving the payload behind would resurrect it when a durable cluster
        re-seeds its directory from the backends on reopen.
        """
        location_id = self.location_of(block_id)
        store = self._stores[location_id]
        if store.contains(block_id):
            store.delete(block_id)
        del self._directory[block_id]
        return location_id

    def delete_blocks(self, block_ids: Iterable[BlockId]) -> int:
        """Bulk :meth:`delete_block`; unknown blocks are skipped.  Returns the
        number of directory entries removed."""
        deleted = 0
        for block_id in block_ids:
            if block_id in self._directory:
                self.delete_block(block_id)
                deleted += 1
        return deleted

    def location_of(self, block_id: BlockId) -> int:
        if block_id not in self._directory:
            raise UnknownBlockError(f"block {block_id!r} is not stored in the cluster")
        return self._directory[block_id]

    def knows(self, block_id: BlockId) -> bool:
        return block_id in self._directory

    def is_available(self, block_id: BlockId) -> bool:
        location_id = self._directory.get(block_id)
        if location_id is None:
            return False
        return self._stores[location_id].holds(block_id)

    def relocate(self, block_id: BlockId, payload: Payload, avoid: Sequence[int] = ()) -> int:
        """Store a repaired block on an available location (not in ``avoid``).

        The avoid-list is a hard constraint: locations in ``avoid`` are never
        chosen, even when they alone have free capacity -- a
        :class:`~repro.exceptions.PlacementError` is raised instead of
        silently co-locating a repaired block with the failure it was
        repaired *from*.  When the cluster topology has more than one
        failure domain, the choice is additionally domain-aware: candidates
        outside the failure domains of the avoided locations (and of the
        block's failed previous location) are preferred, so a rack or site
        coming back from the dead cannot take the rebuilt copy down with it
        again.
        """
        avoided = set(avoid)
        candidates = self._relocation_candidates(block_id, avoided)
        level = self._placement.spread_level() or self._topology.default_level()
        target = self._pick_relocation_target(
            block_id, candidates, level, self._relocation_avoid_domains(block_id, avoided, level)
        )
        self._stores[target].put(block_id, payload)
        self._directory[block_id] = target
        return target

    def relocate_many(
        self,
        items: Iterable[Tuple[BlockId, Payload]],
        avoid: Sequence[int] = (),
    ) -> Dict[BlockId, int]:
        """Bulk :meth:`relocate`: same per-block target selection, amortised.

        Targets are chosen block by block with the exact semantics of
        :meth:`relocate` (hard avoid-list, domain awareness, deterministic
        pool pick), but the candidate set is computed once when no location
        has a capacity limit, and the physical writes are grouped per target
        location into one :meth:`BlockStore.put_many` call each -- the write
        path of batched repair.  Returns ``{block_id: target location}``.
        """
        pairs = list(items)
        if not pairs:
            return {}
        avoided = set(avoid)
        level = self._placement.spread_level() or self._topology.default_level()
        shared_avoid_domains = self._relocation_avoid_domains(None, avoided, level)
        unlimited = all(store.capacity_blocks is None for store in self._stores)
        static_candidates: Optional[List[int]] = None
        if unlimited:
            static_candidates = [
                store.location_id
                for store in self._stores
                if store.available and store.location_id not in avoided
            ]
        # Blocks staged for a target count against its capacity before the
        # grouped write happens, so a batch cannot overfill a location that a
        # per-block relocate loop would have rejected.
        staged_counts: Dict[int, int] = {}
        placed: Dict[int, List[Tuple[BlockId, Payload]]] = {}
        targets: Dict[BlockId, int] = {}
        multi_domain = self._domain_count(level) > 1
        shared_pool: Optional[List[int]] = None
        if static_candidates:
            shared_pool = self._domain_pool(
                static_candidates, level, shared_avoid_domains
            )
        for block_id, payload in pairs:
            if static_candidates:
                candidates = static_candidates
            else:
                candidates = self._relocation_candidates(block_id, avoided, staged_counts)
            avoid_domains = shared_avoid_domains
            previous = self._directory.get(block_id)
            if (
                previous is not None
                and multi_domain
                and not self._stores[previous].available
            ):
                previous_domain = self._domain_of(previous, level)
                if previous_domain not in avoid_domains:
                    avoid_domains = shared_avoid_domains | {previous_domain}
            # The domain-filtered pool only depends on (candidates, avoid
            # set); with static candidates and the shared avoid set it is
            # the same for every block, so compute it once.
            pool = shared_pool if avoid_domains is shared_avoid_domains else None
            target = self._pick_relocation_target(
                block_id, candidates, level, avoid_domains, pool
            )
            if not self._stores[target].contains(block_id):
                staged_counts[target] = staged_counts.get(target, 0) + 1
            placed.setdefault(target, []).append((block_id, payload))
            targets[block_id] = target
        for target, group in placed.items():
            self._stores[target].put_many(group)
            self._directory.update((block_id, target) for block_id, _ in group)
        return targets

    def _relocation_candidates(
        self,
        block_id: BlockId,
        avoided: Set[int],
        staged_counts: Optional[Dict[int, int]] = None,
    ) -> List[int]:
        """Available locations (outside the avoid list) with room for the block."""
        staged = staged_counts or {}
        candidates = [
            store.location_id
            for store in self._stores
            if store.available
            and store.location_id not in avoided
            and (
                store.capacity_blocks is None
                or store.contains(block_id)
                or store.block_count + staged.get(store.location_id, 0)
                < store.capacity_blocks
            )
        ]
        if not candidates:
            raise PlacementError(
                f"no available location outside the avoid list can hold the "
                f"repaired block {block_id!r} (avoided: {sorted(avoided)}); "
                "avoided locations are never used, even when only they have "
                "free capacity"
            )
        return candidates

    def _domain_of(self, location: int, level: str) -> int:
        """Memoised :meth:`Topology.domain_of` (the topology is immutable)."""
        key = (level, location)
        domain = self._domain_cache.get(key)
        if domain is None:
            domain = self._topology.domain_of(location, level)
            self._domain_cache[key] = domain
        return domain

    def _domain_count(self, level: str) -> int:
        """Memoised number of failure domains at ``level``."""
        count = self._domain_count_cache.get(level)
        if count is None:
            count = len(self._topology.domains(level))
            self._domain_count_cache[level] = count
        return count

    def _domain_pool(
        self, candidates: List[int], level: str, avoid_domains: Set[int]
    ) -> List[int]:
        """Candidates outside the avoided domains (all of them as a fallback)."""
        if not avoid_domains:
            return candidates
        domain_of = self._domain_of
        return [
            location
            for location in candidates
            if domain_of(location, level) not in avoid_domains
        ] or candidates

    def _relocation_avoid_domains(
        self, block_id: Optional[BlockId], avoided: Set[int], level: str
    ) -> Set[int]:
        """Failure domains a relocation should steer clear of."""
        if self._domain_count(level) <= 1:
            return set()
        avoid_domains = {
            self._domain_of(location, level)
            for location in avoided
            if 0 <= location < self.location_count
        }
        if block_id is not None:
            previous = self._directory.get(block_id)
            if previous is not None and not self._stores[previous].available:
                avoid_domains.add(self._domain_of(previous, level))
        return avoid_domains

    def _pick_relocation_target(
        self,
        block_id: BlockId,
        candidates: List[int],
        level: str,
        avoid_domains: Set[int],
        pool: Optional[List[int]] = None,
    ) -> int:
        preferred = self._placement.location_for(block_id)
        if self._domain_count(level) <= 1:
            # Single failure domain: the avoid-domain set is empty by
            # construction and every candidate carries the same placement
            # rank, so the generic path below degenerates to this pick.
            if preferred in candidates:
                return preferred
            return candidates[block_id.index % len(candidates)]
        if preferred in candidates and (
            self._domain_of(preferred, level) not in avoid_domains
        ):
            return preferred
        # Prefer candidates outside the failed domains; fall back to any
        # candidate when the disaster spans every domain.  Callers looping
        # over many blocks with one shared avoid-set precompute the pool.
        if pool is None:
            pool = self._domain_pool(candidates, level, avoid_domains)
        # Among those, prefer domains the placement policy ranks best --
        # a spreading policy keeps the rebuilt block away from the rest
        # of its repair group whenever a spare domain exists.  The base
        # policy ranks every domain the same, so the filter is skipped
        # unless the policy actually overrides it.
        if type(self._placement).relocation_rank is not PlacementPolicy.relocation_rank:
            ranks = [
                self._placement.relocation_rank(
                    block_id, self._domain_of(location, level)
                )
                for location in pool
            ]
            best_rank = min(ranks)
            pool = [
                location for location, rank in zip(pool, ranks) if rank == best_rank
            ]
        # Deterministic spread: the block id picks over the pool.
        return pool[block_id.index % len(pool)]

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def block_ids(self) -> Iterator[BlockId]:
        return iter(list(self._directory.keys()))

    def blocks_at(self, location_id: int) -> List[BlockId]:
        return [
            block_id
            for block_id, location in self._directory.items()
            if location == location_id
        ]

    def unavailable_blocks(self) -> Set[BlockId]:
        """Blocks whose location is currently down (the repair work list)."""
        down = {
            store.location_id for store in self._stores if not store.available
        }
        return {
            block_id
            for block_id, location in self._directory.items()
            if location in down
        }

    def domain_block_counts(self, level: Optional[str] = None) -> Dict[str, int]:
        """Blocks per failure domain (label -> count) at the given level.

        Defaults to the coarsest meaningful level of the topology; a flat
        single-domain cluster returns an empty dict (nothing to break down).
        """
        if level is None:
            if self._topology.is_flat():
                return {}
            level = self._topology.default_level()
        domains = self._topology.domains(level)
        if len(domains) <= 1:
            return {}
        labels = self._topology.domain_labels(level)
        counts = {label: 0 for label in labels}
        for location in self._directory.values():
            counts[labels[self._topology.domain_of(location, level)]] += 1
        return counts

    def stats(self) -> ClusterStats:
        return ClusterStats(
            locations=self.location_count,
            available_locations=len(self.available_locations()),
            blocks=len(self._directory),
            unavailable_blocks=len(self.unavailable_blocks()),
            bytes_stored=sum(store.bytes_stored for store in self._stores),
            cache_hits=sum(store.cache_hits for store in self._stores),
            cache_misses=sum(store.cache_misses for store in self._stores),
            domain_blocks=self.domain_block_counts(),
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def backend_spec(self) -> str:
        """The backend name the cluster's locations were built with."""
        return self._backend_spec

    @property
    def root(self) -> Optional[str]:
        """The durable root directory, ``None`` for volatile backends."""
        return self._root

    def flush(self) -> None:
        """Push every location's buffered writes to its medium."""
        for store in self._stores:
            store.flush()

    def close(self) -> None:
        """Close every location (persisting counters on durable backends)."""
        for store in self._stores:
            store.close()

    def __len__(self) -> int:
        return len(self._directory)


class ClusterBlockSource:
    """A scheme-facing block fetcher with bulk and availability hooks.

    Calling the object behaves exactly like
    :meth:`StorageCluster.try_get_block`, so it is a drop-in
    :data:`~repro.schemes.base.BlockFetcher`.  Schemes that know how to
    batch (see :meth:`EntanglementScheme.repair
    <repro.schemes.entanglement_scheme.EntanglementScheme>`) duck-type for
    the extra hooks: :meth:`is_available` answers the round planner without
    moving payload bytes, and :meth:`try_get_many` fetches a whole plan's
    inputs grouped per location.
    """

    __slots__ = ("_cluster",)

    def __init__(self, cluster: StorageCluster) -> None:
        self._cluster = cluster

    @property
    def cluster(self) -> StorageCluster:
        return self._cluster

    def __call__(self, block_id: BlockId) -> Optional[Payload]:
        return self._cluster.try_get_block(block_id)

    def is_available(self, block_id: BlockId) -> bool:
        """Whether a fetch would succeed, without performing it."""
        return self._cluster.is_available(block_id)

    def try_get_many(self, block_ids: Iterable[BlockId]) -> List[Optional[Payload]]:
        """Bulk fetch in request order (``None`` for unreachable blocks)."""
        return self._cluster.try_get_many(block_ids)
