"""A cluster of storage locations with a placement policy.

The cluster is the physical layer beneath the helical lattice: it stores the
encoded blocks, knows which location holds each block, and exposes the
availability view the decoder and the repair manager operate on.

Every location's payloads live on a pluggable backend
(:mod:`repro.storage.backends`): ``backend="memory"`` keeps the historical
in-process behaviour, while ``backend="disk"`` / ``"segment"`` with a
``root`` directory give each location its own durable sub-root
(``<root>/loc-NNNN``).  Opening a cluster over a root that already holds
data rebuilds the block -> location directory by listing each backend, so a
cluster can be closed and reopened with all placements intact.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.core.blocks import Block, BlockId
from repro.core.xor import Payload
from repro.exceptions import PlacementError, UnknownBlockError
from repro.storage import backends as _backends
from repro.storage.block_store import BlockStore
from repro.storage.placement import PlacementPolicy, RandomPlacement
from repro.storage.topology import Topology


@dataclass
class ClusterStats:
    """Aggregate statistics of a cluster.

    ``domain_blocks`` maps failure-domain labels (sites, or racks for a
    single-site topology) to the number of blocks they hold; it stays empty
    for flat single-domain clusters.
    """

    locations: int
    available_locations: int
    blocks: int
    unavailable_blocks: int
    bytes_stored: int
    cache_hits: int = 0
    cache_misses: int = 0
    domain_blocks: Dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        text = (
            f"{self.available_locations}/{self.locations} locations up, "
            f"{self.blocks} blocks ({self.unavailable_blocks} currently unavailable), "
            f"{self.bytes_stored} bytes"
        )
        if self.domain_blocks:
            per_domain = " ".join(
                f"{label}={count}" for label, count in self.domain_blocks.items()
            )
            text = f"{text}; domains: {per_domain}"
        return text


class StorageCluster:
    """``n`` storage locations plus the block -> location mapping.

    The spatial layout of those locations is an explicit
    :class:`~repro.storage.topology.Topology` (site -> rack -> node); the
    legacy ``location_count=N`` form keeps working as the flat single-site
    shim.  Pass ``topology=`` (a ``Topology``, a compact spec string like
    ``"sites=3,racks=2,nodes=4"``, a JSON file path or an int) to make the
    cluster domain-aware: per-domain statistics and repair re-placement that
    avoids the failed block's failure domain.
    """

    def __init__(
        self,
        location_count: Optional[int] = None,
        placement: Optional[PlacementPolicy] = None,
        capacity_blocks: Optional[int] = None,
        backend: str = "memory",
        root: Optional[str] = None,
        cache_blocks: Optional[int] = None,
        topology: Optional[Union[Topology, int, str]] = None,
        **backend_options,
    ) -> None:
        resolved = Topology.resolve(topology)
        if resolved is None and placement is not None:
            # Adopt the placement's topology so a policy built over sites and
            # racks makes the cluster domain-aware without repeating the spec.
            resolved = placement.topology
        if resolved is None:
            if location_count is None:
                raise PlacementError(
                    "a cluster needs a location_count, a topology or a placement"
                )
            resolved = Topology.flat(location_count)
        if location_count is not None and location_count != resolved.node_count:
            raise PlacementError(
                f"location_count={location_count} contradicts the topology "
                f"({resolved.node_count} nodes); pass one or the other"
            )
        self._topology = resolved
        location_count = resolved.node_count
        if location_count < 1:
            raise PlacementError("a cluster needs at least one location")
        self._backend_spec = backend
        self._root = root
        self._stores: List[BlockStore] = [
            BlockStore(
                location_id,
                capacity_blocks,
                backend=_backends.get(
                    backend,
                    root=(
                        os.path.join(root, f"loc-{location_id:04d}")
                        if root is not None
                        else None
                    ),
                    **backend_options,
                ),
                cache_blocks=cache_blocks,
            )
            for location_id in range(location_count)
        ]
        self._placement = placement or RandomPlacement(location_count)
        if self._placement.location_count != location_count:
            raise PlacementError(
                "placement policy location count does not match the cluster size"
            )
        # Pre-existing blocks on persistent backends re-seed the directory,
        # so a reopened cluster serves its old placements immediately.  A
        # block found at several locations (a relocated repair whose stale
        # source copy was never reclaimed) keeps the first copy; the
        # duplicates are physically deleted so they cannot leak storage or
        # inflate the byte accounting across reopen cycles.
        self._directory: Dict[BlockId, int] = {}
        for store in self._stores:
            for block_id in store.block_ids():
                if block_id in self._directory:
                    store.delete(block_id)
                else:
                    self._directory[block_id] = store.location_id

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def location_count(self) -> int:
        return len(self._stores)

    @property
    def topology(self) -> Topology:
        """The site -> rack -> node layout of the locations."""
        return self._topology

    @property
    def placement(self) -> PlacementPolicy:
        return self._placement

    def location(self, location_id: int) -> BlockStore:
        return self._stores[location_id]

    def locations(self) -> Iterator[BlockStore]:
        return iter(self._stores)

    def available_locations(self) -> List[int]:
        return [store.location_id for store in self._stores if store.available]

    def unavailable_locations(self) -> List[int]:
        return [store.location_id for store in self._stores if not store.available]

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def fail_locations(self, location_ids: Iterable[int]) -> None:
        for location_id in location_ids:
            self._stores[location_id].fail()

    def wipe_locations(self, location_ids: Iterable[int]) -> None:
        for location_id in location_ids:
            self._stores[location_id].wipe()

    def restore_locations(self, location_ids: Optional[Iterable[int]] = None) -> None:
        """Bring locations back online, dropping stale block copies.

        While a location was down, repair may have rebuilt its blocks onto
        healthy locations (the directory now points elsewhere).  Those stale
        physical copies are reclaimed here so a restore can neither
        resurrect them nor leak their bytes on durable backends.
        """
        targets = (
            list(location_ids)
            if location_ids is not None
            else [store.location_id for store in self._stores]
        )
        for location_id in targets:
            store = self._stores[location_id]
            store.restore()
            for block_id in store.block_ids():
                if self._directory.get(block_id) != location_id:
                    store.delete(block_id)

    # ------------------------------------------------------------------
    # Block operations
    # ------------------------------------------------------------------
    def put_block(self, block: Block, location_id: Optional[int] = None) -> int:
        """Store a block, returning the location chosen for it."""
        if location_id is None:
            location_id = self._placement.location_for(block.block_id)
        self._stores[location_id].put(block.block_id, block.payload)
        self._directory[block.block_id] = location_id
        return location_id

    def put_blocks(self, blocks: Iterable[Block]) -> None:
        for block in blocks:
            self.put_block(block)

    def put_many(self, items: Iterable[Tuple[BlockId, Payload]]) -> int:
        """Bulk write: place and store ``(block_id, payload)`` pairs.

        Placement decisions are computed up front through the policy's bulk
        :meth:`PlacementPolicy.locations_for`, payloads are grouped per
        destination and each location receives one :meth:`BlockStore.put_many`
        call, so per-block Python overhead is amortised over the batch.  The
        directory is updated in bulk.  Returns the number of blocks stored.
        """
        pairs = list(items)
        locations = self._placement.locations_for([block_id for block_id, _ in pairs])
        placed: Dict[int, List[Tuple[BlockId, Payload]]] = {}
        for pair, location_id in zip(pairs, locations):
            placed.setdefault(location_id, []).append(pair)
        stored = 0
        for location_id, group in placed.items():
            stored += self._stores[location_id].put_many(group)
            self._directory.update((block_id, location_id) for block_id, _ in group)
        return stored

    def get_many(self, block_ids: Iterable[BlockId]) -> List[Payload]:
        """Bulk read: fetch payloads grouped per location.

        Raises when a block is unknown to the cluster or its location is down
        (mirrors :meth:`get_block`); results come back in request order.
        """
        wanted = list(block_ids)
        grouped: Dict[int, List[int]] = {}
        for position, block_id in enumerate(wanted):
            grouped.setdefault(self.location_of(block_id), []).append(position)
        payloads: List[Optional[Payload]] = [None] * len(wanted)
        for location_id, positions in grouped.items():
            fetched = self._stores[location_id].get_many(
                [wanted[position] for position in positions]
            )
            for position, payload in zip(positions, fetched):
                payloads[position] = payload
        return payloads  # type: ignore[return-value]

    def get_block(self, block_id: BlockId) -> Payload:
        """Return a payload; raises if the block is unknown or its location is down."""
        location_id = self.location_of(block_id)
        return self._stores[location_id].get(block_id)

    def try_get_block(self, block_id: BlockId) -> Optional[Payload]:
        """Availability-aware fetch used by the decoder (``None`` when unreachable)."""
        location_id = self._directory.get(block_id)
        if location_id is None:
            return None
        return self._stores[location_id].try_get(block_id)

    def delete_block(self, block_id: BlockId) -> int:
        """Remove a block from the cluster, returning the location that held it.

        Both the placement index (directory) entry and the physical payload
        are removed -- even when the location is currently marked
        unavailable: the availability flag models *request serving* during a
        simulated outage, while delete is a management-plane reclamation, and
        leaving the payload behind would resurrect it when a durable cluster
        re-seeds its directory from the backends on reopen.
        """
        location_id = self.location_of(block_id)
        store = self._stores[location_id]
        if store.contains(block_id):
            store.delete(block_id)
        del self._directory[block_id]
        return location_id

    def delete_blocks(self, block_ids: Iterable[BlockId]) -> int:
        """Bulk :meth:`delete_block`; unknown blocks are skipped.  Returns the
        number of directory entries removed."""
        deleted = 0
        for block_id in block_ids:
            if block_id in self._directory:
                self.delete_block(block_id)
                deleted += 1
        return deleted

    def location_of(self, block_id: BlockId) -> int:
        if block_id not in self._directory:
            raise UnknownBlockError(f"block {block_id!r} is not stored in the cluster")
        return self._directory[block_id]

    def knows(self, block_id: BlockId) -> bool:
        return block_id in self._directory

    def is_available(self, block_id: BlockId) -> bool:
        location_id = self._directory.get(block_id)
        if location_id is None:
            return False
        return self._stores[location_id].holds(block_id)

    def relocate(self, block_id: BlockId, payload: Payload, avoid: Sequence[int] = ()) -> int:
        """Store a repaired block on an available location (not in ``avoid``).

        The avoid-list is a hard constraint: locations in ``avoid`` are never
        chosen, even when they alone have free capacity -- a
        :class:`~repro.exceptions.PlacementError` is raised instead of
        silently co-locating a repaired block with the failure it was
        repaired *from*.  When the cluster topology has more than one
        failure domain, the choice is additionally domain-aware: candidates
        outside the failure domains of the avoided locations (and of the
        block's failed previous location) are preferred, so a rack or site
        coming back from the dead cannot take the rebuilt copy down with it
        again.
        """
        avoided = set(avoid)
        candidates = [
            store.location_id
            for store in self._stores
            if store.available
            and store.location_id not in avoided
            and (
                store.capacity_blocks is None
                or store.contains(block_id)
                or store.block_count < store.capacity_blocks
            )
        ]
        if not candidates:
            raise PlacementError(
                f"no available location outside the avoid list can hold the "
                f"repaired block {block_id!r} (avoided: {sorted(avoided)}); "
                "avoided locations are never used, even when only they have "
                "free capacity"
            )
        level = self._placement.spread_level() or self._topology.default_level()
        avoid_domains: Set[int] = set()
        if len(self._topology.domains(level)) > 1:
            avoid_domains = {
                self._topology.domain_of(location, level)
                for location in avoided
                if 0 <= location < self.location_count
            }
            previous = self._directory.get(block_id)
            if previous is not None and not self._stores[previous].available:
                avoid_domains.add(self._topology.domain_of(previous, level))
        preferred = self._placement.location_for(block_id)
        if preferred in candidates and (
            self._topology.domain_of(preferred, level) not in avoid_domains
        ):
            target = preferred
        else:
            # Prefer candidates outside the failed domains; fall back to any
            # candidate when the disaster spans every domain.
            pool = [
                location
                for location in candidates
                if self._topology.domain_of(location, level) not in avoid_domains
            ] or candidates
            # Among those, prefer domains the placement policy ranks best --
            # a spreading policy keeps the rebuilt block away from the rest
            # of its repair group whenever a spare domain exists.
            best_rank = min(
                self._placement.relocation_rank(
                    block_id, self._topology.domain_of(location, level)
                )
                for location in pool
            )
            pool = [
                location
                for location in pool
                if self._placement.relocation_rank(
                    block_id, self._topology.domain_of(location, level)
                )
                == best_rank
            ]
            # Deterministic spread: the block id picks over the pool.
            target = pool[block_id.index % len(pool)]
        self._stores[target].put(block_id, payload)
        self._directory[block_id] = target
        return target

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def block_ids(self) -> Iterator[BlockId]:
        return iter(list(self._directory.keys()))

    def blocks_at(self, location_id: int) -> List[BlockId]:
        return [
            block_id
            for block_id, location in self._directory.items()
            if location == location_id
        ]

    def unavailable_blocks(self) -> Set[BlockId]:
        """Blocks whose location is currently down (the repair work list)."""
        down = {
            store.location_id for store in self._stores if not store.available
        }
        return {
            block_id
            for block_id, location in self._directory.items()
            if location in down
        }

    def domain_block_counts(self, level: Optional[str] = None) -> Dict[str, int]:
        """Blocks per failure domain (label -> count) at the given level.

        Defaults to the coarsest meaningful level of the topology; a flat
        single-domain cluster returns an empty dict (nothing to break down).
        """
        if level is None:
            if self._topology.is_flat():
                return {}
            level = self._topology.default_level()
        domains = self._topology.domains(level)
        if len(domains) <= 1:
            return {}
        labels = self._topology.domain_labels(level)
        counts = {label: 0 for label in labels}
        for location in self._directory.values():
            counts[labels[self._topology.domain_of(location, level)]] += 1
        return counts

    def stats(self) -> ClusterStats:
        return ClusterStats(
            locations=self.location_count,
            available_locations=len(self.available_locations()),
            blocks=len(self._directory),
            unavailable_blocks=len(self.unavailable_blocks()),
            bytes_stored=sum(store.bytes_stored for store in self._stores),
            cache_hits=sum(store.cache_hits for store in self._stores),
            cache_misses=sum(store.cache_misses for store in self._stores),
            domain_blocks=self.domain_block_counts(),
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def backend_spec(self) -> str:
        """The backend name the cluster's locations were built with."""
        return self._backend_spec

    @property
    def root(self) -> Optional[str]:
        """The durable root directory, ``None`` for volatile backends."""
        return self._root

    def flush(self) -> None:
        """Push every location's buffered writes to its medium."""
        for store in self._stores:
            store.flush()

    def close(self) -> None:
        """Close every location (persisting counters on durable backends)."""
        for store in self._stores:
            store.close()

    def __len__(self) -> int:
        return len(self._directory)
