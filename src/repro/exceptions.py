"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration problems from runtime repair
failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class InvalidParametersError(ReproError, ValueError):
    """Raised when an AE(alpha, s, p) or baseline code setting is invalid.

    Examples: ``p < s`` for a double/triple entanglement, a non-positive
    ``alpha``, or a Reed-Solomon configuration with ``k <= 0``.
    """


class BlockSizeMismatchError(ReproError, ValueError):
    """Raised when blocks of different sizes are combined in an XOR or stripe."""


class UnknownBlockError(ReproError, KeyError):
    """Raised when a block identifier does not exist in a store or lattice."""


class BlockUnavailableError(ReproError):
    """Raised when a block exists but its storage location is unavailable."""


class RepairFailedError(ReproError):
    """Raised when the decoder cannot reconstruct a requested block."""

    def __init__(self, block_id: object, reason: str = "") -> None:
        self.block_id = block_id
        self.reason = reason
        message = f"cannot repair block {block_id!r}"
        if reason:
            message = f"{message}: {reason}"
        super().__init__(message)


class DecodingError(ReproError):
    """Raised when a baseline erasure code cannot decode a damaged stripe."""


class PlacementError(ReproError):
    """Raised when a placement policy cannot satisfy its constraints."""


class StorageFullError(ReproError):
    """Raised when a storage location exceeds its configured capacity."""


class LatticeBoundsError(ReproError, IndexError):
    """Raised when a lattice position lies outside the encoded region."""


class IntegrityError(ReproError):
    """Raised when a block payload fails an integrity (checksum) verification."""


class ServiceOverloadedError(ReproError):
    """Raised when the concurrent front-end's admission queue is full.

    Backpressure, not failure: the request was never started, so the caller
    may retry once in-flight requests drain (see
    :class:`~repro.system.frontend.ConcurrentStorageService`).
    """
