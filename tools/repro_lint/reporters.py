"""Text and JSON reporters for repro-lint results."""

from __future__ import annotations

import json
from typing import Any, Dict

from repro_lint.framework import LintResult, all_rules

#: Bumped whenever the JSON schema changes shape.
JSON_FORMAT_VERSION = 1


def render_text(result: LintResult, verbose: bool = False) -> str:
    """Human-readable report: one finding per line plus a summary footer."""
    lines = [finding.render() for finding in result.findings]
    if verbose and result.suppressed:
        lines.append("")
        lines.append("suppressed by # noqa:")
        lines.extend(f"  {finding.render()}" for finding in result.suppressed)
    lines.append("")
    status = "clean" if result.ok else f"{len(result.findings)} finding(s)"
    lines.append(
        f"repro-lint: {status} across {result.files_checked} file(s)"
        f" ({len(result.suppressed)} suppressed)"
    )
    return "\n".join(lines).lstrip("\n")


def render_json(result: LintResult) -> str:
    """Machine-readable report (consumed by the CI artifact upload)."""
    def encode(finding: Any) -> Dict[str, Any]:
        return {
            "code": finding.code,
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "message": finding.message,
        }

    document = {
        "version": JSON_FORMAT_VERSION,
        "tool": "repro-lint",
        "files_checked": result.files_checked,
        "ok": result.ok,
        "rules": {
            rule.code: {"name": rule.name, "summary": rule.summary}
            for rule in all_rules()
        },
        "findings": [encode(finding) for finding in result.findings],
        "suppressed": [encode(finding) for finding in result.suppressed],
    }
    return json.dumps(document, indent=2, sort_keys=True)
