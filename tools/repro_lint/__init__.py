"""repro-lint: project-invariant static analysis for the repro codebase.

A small, dependency-free AST linter that enforces the hand-maintained
invariants of this repository *before* code runs -- seeded determinism on
the simulation/engine paths, ``__all__``/registry import-surface sync,
bytes-vs-str payload safety on the storage read path, and general hygiene
(mutable defaults, broad excepts, float equality).  Rules carry stable
codes (``RPR001``...) and individual findings can be suppressed inline with
``# noqa: RPRxxx``.

Run it as a module::

    PYTHONPATH=tools python -m repro_lint src tests benchmarks

See ``docs/static-analysis.md`` for the full rule catalogue and policy.
"""

from __future__ import annotations

from repro_lint.framework import (
    PARSE_ERROR_CODE,
    Finding,
    LintResult,
    ParsedModule,
    ProjectRule,
    Rule,
    all_rules,
    lint_paths,
    register_rule,
    rule_for_code,
)
from repro_lint.reporters import render_json, render_text

# Importing the rule modules registers every rule with the framework.
from repro_lint import rules as _rules  # noqa: F401  (import-for-side-effect)

__version__ = "1.0.0"

__all__ = [
    "Finding",
    "LintResult",
    "PARSE_ERROR_CODE",
    "ParsedModule",
    "ProjectRule",
    "Rule",
    "all_rules",
    "lint_paths",
    "register_rule",
    "render_json",
    "render_text",
    "rule_for_code",
]
