"""Core machinery of repro-lint: rules, registry, noqa handling, driver.

The framework is deliberately tiny and dependency-free.  A *rule* is a class
with a stable ``code`` (``RPR001``...), a one-line ``summary`` and a
``check`` hook; per-file rules receive one :class:`ParsedModule` at a time,
while :class:`ProjectRule` subclasses see the whole parsed tree at once
(needed for cross-file invariants such as registry/test coverage).  The
driver parses every ``*.py`` file under the requested paths exactly once,
runs each applicable rule, filters findings through ``# noqa`` comments and
returns a :class:`LintResult` ready for the text/JSON reporters.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

#: Code attached to files that do not parse at all.
PARSE_ERROR_CODE = "RPR000"

#: Directory fragments never linted.  ``fixtures/repro_lint`` holds the
#: intentionally-bad snippets used by the rule tests -- linting them would
#: make the live-tree run fail by design.
DEFAULT_EXCLUDES: Tuple[str, ...] = (
    "__pycache__",
    ".git",
    "fixtures/repro_lint",
)

_CODE_RE = re.compile(r"^RPR\d{3}$")
_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class ParsedModule:
    """A parsed source file plus the pre-extracted ``# noqa`` comment map."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    #: line number -> set of suppressed codes; ``{"*"}`` means bare ``# noqa``.
    noqa: Dict[int, set]

    @property
    def lines(self) -> List[str]:
        return self.source.splitlines()


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


class Rule:
    """Base class for per-file rules.

    Subclasses set ``code``/``name``/``summary`` and implement
    :meth:`check`.  ``applies_to`` limits a rule to a path subset; paths are
    compared in POSIX form so rules can match fragments such as
    ``repro/simulation/`` regardless of the working directory.
    """

    code: str = ""
    name: str = ""
    summary: str = ""

    def applies_to(self, display_path: str) -> bool:
        return True

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ParsedModule, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
        )


class ProjectRule(Rule):
    """A rule that needs every parsed module at once (cross-file checks)."""

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        return iter(())

    def check_project(self, modules: Sequence[ParsedModule]) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def register_rule(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule under its code."""
    if not _CODE_RE.match(rule_cls.code or ""):
        raise ValueError(f"rule {rule_cls.__name__} has invalid code {rule_cls.code!r}")
    if rule_cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule_cls.code}")
    _REGISTRY[rule_cls.code] = rule_cls()
    return rule_cls


def all_rules() -> List[Rule]:
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def rule_for_code(code: str) -> Optional[Rule]:
    return _REGISTRY.get(code)


# ----------------------------------------------------------------------
# noqa extraction
# ----------------------------------------------------------------------

def extract_noqa(source: str) -> Dict[int, set]:
    """Map line numbers to the set of codes suppressed on that line.

    Bare ``# noqa`` suppresses every code on its line (stored as ``{"*"}``);
    ``# noqa: RPR001, RPR004`` suppresses just those codes.  Comments are
    located with :mod:`tokenize` so string literals containing the word
    ``noqa`` do not count.
    """
    noqa: Dict[int, set] = {}
    try:
        tokens = tokenize.generate_tokens(iter(source.splitlines(keepends=True)).__next__)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(token.string)
            if match is None:
                continue
            codes = match.group("codes")
            if codes is None:
                noqa.setdefault(token.start[0], set()).add("*")
            else:
                parsed = {code.strip().upper() for code in codes.split(",") if code.strip()}
                noqa.setdefault(token.start[0], set()).update(parsed)
    except (tokenize.TokenError, IndentationError):
        # A file that does not tokenize will not parse either; the driver
        # reports RPR000 for it, so there is nothing to suppress.
        pass
    return noqa


def is_suppressed(finding: Finding, noqa: Dict[int, set]) -> bool:
    codes = noqa.get(finding.line)
    if not codes:
        return False
    return "*" in codes or finding.code in codes


# ----------------------------------------------------------------------
# File collection and driver
# ----------------------------------------------------------------------

def _excluded(path: Path, excludes: Sequence[str]) -> bool:
    posix = path.as_posix()
    return any(fragment in posix for fragment in excludes)


def collect_files(
    paths: Sequence[Path], excludes: Sequence[str] = DEFAULT_EXCLUDES
) -> List[Path]:
    """Expand the requested paths into a sorted, de-duplicated file list."""
    seen = {}
    for root in paths:
        if root.is_file() and root.suffix == ".py":
            candidates: Iterable[Path] = [root]
        elif root.is_dir():
            candidates = sorted(root.rglob("*.py"))
        else:
            candidates = []
        for candidate in candidates:
            if _excluded(candidate, excludes):
                continue
            seen[candidate.resolve()] = candidate
    return sorted(seen.values())


def parse_module(path: Path, display_path: Optional[str] = None) -> ParsedModule:
    source = path.read_text(encoding="utf-8")
    display = display_path if display_path is not None else path.as_posix()
    tree = ast.parse(source, filename=display)
    return ParsedModule(
        path=path,
        display_path=display,
        source=source,
        tree=tree,
        noqa=extract_noqa(source),
    )


def lint_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    excludes: Sequence[str] = DEFAULT_EXCLUDES,
) -> LintResult:
    """Lint every python file under ``paths`` and return the result."""
    active = list(rules) if rules is not None else all_rules()
    result = LintResult()
    modules: List[ParsedModule] = []

    for path in collect_files(paths, excludes):
        result.files_checked += 1
        try:
            module = parse_module(path)
        except SyntaxError as error:
            result.findings.append(
                Finding(
                    path=path.as_posix(),
                    line=error.lineno or 1,
                    col=(error.offset or 0) + 1,
                    code=PARSE_ERROR_CODE,
                    message=f"file does not parse: {error.msg}",
                )
            )
            continue
        modules.append(module)

    raw: List[Tuple[Finding, ParsedModule]] = []
    for module in modules:
        for rule in active:
            # ProjectRule subclasses may implement both hooks: per-file
            # checks run here, cross-file checks via check_project below.
            if not rule.applies_to(module.display_path):
                continue
            for finding in rule.check(module):
                raw.append((finding, module))

    by_display = {module.display_path: module for module in modules}
    for rule in active:
        if not isinstance(rule, ProjectRule):
            continue
        for finding in rule.check_project(modules):
            module = by_display.get(finding.path)
            if module is not None:
                raw.append((finding, module))
            else:
                result.findings.append(finding)

    for finding, module in raw:
        if is_suppressed(finding, module.noqa):
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)

    result.findings.sort()
    result.suppressed.sort()
    return result
