"""CLI entry point: ``python -m repro_lint src tests benchmarks``.

Exit status is 0 when the tree is clean (after ``# noqa`` suppression),
1 when findings remain, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro_lint.framework import DEFAULT_EXCLUDES, all_rules, lint_paths, rule_for_code
from repro_lint.reporters import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Project-invariant static analysis for the repro codebase.",
    )
    parser.add_argument("paths", nargs="*", type=Path, help="files or directories to lint")
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format written to stdout (default: text)",
    )
    parser.add_argument(
        "--json-output",
        type=Path,
        default=None,
        metavar="FILE",
        help="additionally write the JSON report to FILE (CI artifact)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="FRAGMENT",
        help="extra path fragment to exclude (repeatable); "
        f"always excluded: {', '.join(DEFAULT_EXCLUDES)}",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="also list # noqa-suppressed findings"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}: {rule.summary}")
        return 0

    if not args.paths:
        parser.error("at least one path is required (e.g. src tests benchmarks)")

    rules = None
    if args.select:
        rules = []
        for code in (item.strip().upper() for item in args.select.split(",")):
            if not code:
                continue
            rule = rule_for_code(code)
            if rule is None:
                parser.error(f"unknown rule code {code!r} (see --list-rules)")
            rules.append(rule)

    excludes = tuple(DEFAULT_EXCLUDES) + tuple(args.exclude)
    result = lint_paths(args.paths, rules=rules, excludes=excludes)

    if args.json_output is not None:
        args.json_output.parent.mkdir(parents=True, exist_ok=True)
        args.json_output.write_text(render_json(result) + "\n", encoding="utf-8")

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
