"""RPR001: seeded determinism on the simulation/engine paths.

The simulation engine, the failure models and the measured-vs-analytic
``compare`` path must be replayable from a seed: golden-number tests, the
perf-trajectory gates and paper-figure benchmarks all depend on it.  Inside
those modules every RNG construction must receive an explicit seed
expression, and wall-clock entropy sources are banned outright.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro_lint.framework import Finding, ParsedModule, Rule, register_rule
from repro_lint.rules._helpers import attr_chain, imported_names_from

#: Path fragments of the deterministic engine surface (POSIX form).
ENGINE_PATHS = (
    "repro/simulation/",
    "repro/storage/failures.py",
    "repro/system/compare.py",
    "repro/system/frontend.py",
    "repro/system/transitions.py",
)

#: Dotted calls that read the wall clock or process entropy.
BANNED_CALLS = {
    "time.time": "reads the wall clock",
    "time.time_ns": "reads the wall clock",
    "time.monotonic": "reads the wall clock",
    "time.perf_counter": "reads the wall clock",
    "datetime.now": "reads the wall clock",
    "datetime.utcnow": "reads the wall clock",
    "datetime.datetime.now": "reads the wall clock",
    "datetime.datetime.utcnow": "reads the wall clock",
    "date.today": "reads the wall clock",
    "datetime.date.today": "reads the wall clock",
    "uuid.uuid1": "derives entropy from host state",
    "uuid.uuid4": "derives entropy from os.urandom",
    "os.urandom": "derives entropy from the OS",
    "secrets.token_bytes": "derives entropy from the OS",
}

#: ``random.<fn>`` calls that consume the *global* (unseeded) Mersenne state.
GLOBAL_RANDOM_FNS = {
    "random",
    "randint",
    "randrange",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "gauss",
    "randbytes",
    "getrandbits",
    "seed",
}


def _is_seedless(call: ast.Call) -> bool:
    """True when the call passes no seed expression at all (or ``seed=None``)."""
    if call.args:
        first = call.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    for keyword in call.keywords:
        if keyword.arg == "seed":
            value = keyword.value
            return isinstance(value, ast.Constant) and value.value is None
        if keyword.arg is None:  # **kwargs: cannot prove seedless
            return False
    return True


@register_rule
class DeterminismRule(Rule):
    code = "RPR001"
    name = "seeded-determinism"
    summary = (
        "engine paths must seed every RNG explicitly and never read the "
        "wall clock or OS entropy"
    )

    def applies_to(self, display_path: str) -> bool:
        return any(fragment in display_path for fragment in ENGINE_PATHS)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        rng_aliases: Set[str] = imported_names_from(module.tree, "numpy.random")
        random_aliases: Set[str] = imported_names_from(module.tree, "random")

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = attr_chain(node.func)
            if dotted is None:
                continue

            tail = dotted.rsplit(".", 1)[-1]
            is_default_rng = dotted.endswith(".default_rng") or (
                dotted == "default_rng" and "default_rng" in rng_aliases
            )
            is_random_random = dotted == "random.Random" or (
                dotted == "Random" and "Random" in random_aliases
            )
            if (is_default_rng or is_random_random) and _is_seedless(node):
                yield self.finding(
                    module,
                    node,
                    f"`{dotted}(...)` on an engine path must pass an explicit "
                    "seed expression (argless construction is "
                    "non-reproducible)",
                )
                continue

            if dotted in BANNED_CALLS:
                yield self.finding(
                    module,
                    node,
                    f"`{dotted}()` {BANNED_CALLS[dotted]}; engine paths must "
                    "be replayable from a seed",
                )
                continue

            if dotted.startswith("random.") and tail in GLOBAL_RANDOM_FNS:
                yield self.finding(
                    module,
                    node,
                    f"`{dotted}()` uses the global unseeded RNG; construct "
                    "`random.Random(seed)` instead",
                )
