"""RPR004: hygiene -- mutable defaults, broad excepts, float equality.

Three classic latent-bug shapes, scoped where they bite this project:

- Mutable default arguments (anywhere): a shared list/dict/set default is
  state smuggled across calls; in the service layer it leaks placement and
  repair state between requests.
- Bare ``except:`` and broad ``except Exception`` (anywhere): the repair
  and disaster paths must not swallow ``ReproError`` subtypes silently; a
  broad handler turns data loss into a log line.
- Float ``==`` / ``!=`` (analytic models only: ``repro/analysis/`` and
  ``repro/simulation/metrics.py``): the analytic cost/reliability models
  compare measured against closed-form values; exact float equality there
  is either vacuous or flaky -- use ``math.isclose`` / ``pytest.approx``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro_lint.framework import Finding, ParsedModule, Rule, register_rule
from repro_lint.rules._helpers import is_float_constant

FLOAT_EQ_PATHS = ("repro/analysis/", "repro/simulation/metrics.py")

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "Counter", "deque"}
_BROAD_EXCEPTIONS = {"Exception", "BaseException"}


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS
    return False


def _exception_names(handler_type: ast.AST) -> List[str]:
    if isinstance(handler_type, ast.Name):
        return [handler_type.id]
    if isinstance(handler_type, ast.Attribute):
        return [handler_type.attr]
    if isinstance(handler_type, ast.Tuple):
        names: List[str] = []
        for element in handler_type.elts:
            names.extend(_exception_names(element))
        return names
    return []


@register_rule
class HygieneRule(Rule):
    code = "RPR004"
    name = "hygiene"
    summary = (
        "no mutable default arguments, no bare/broad excepts, no float "
        "equality in analytic models"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        float_eq_scope = any(
            fragment in module.display_path for fragment in FLOAT_EQ_PATHS
        )
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_defaults(module, node)
            elif isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(module, node)
            elif float_eq_scope and isinstance(node, ast.Compare):
                yield from self._check_float_eq(module, node)

    def _check_defaults(
        self, module: ParsedModule, node: ast.FunctionDef
    ) -> Iterator[Finding]:
        defaults = list(node.args.defaults) + [
            default for default in node.args.kw_defaults if default is not None
        ]
        for default in defaults:
            if _is_mutable_literal(default):
                yield self.finding(
                    module,
                    default,
                    f"mutable default argument in {node.name}(); the object "
                    "is shared across calls -- default to None and "
                    "construct inside the body",
                )

    def _check_handler(
        self, module: ParsedModule, node: ast.ExceptHandler
    ) -> Iterator[Finding]:
        if node.type is None:
            yield self.finding(
                module,
                node,
                "bare `except:` catches SystemExit/KeyboardInterrupt too; "
                "name the exception types",
            )
            return
        for name in _exception_names(node.type):
            if name in _BROAD_EXCEPTIONS:
                yield self.finding(
                    module,
                    node,
                    f"broad `except {name}` swallows unrelated failures; "
                    "catch the specific ReproError/OSError subtypes",
                )
                return

    def _check_float_eq(
        self, module: ParsedModule, node: ast.Compare
    ) -> Iterator[Finding]:
        operands = [node.left] + list(node.comparators)
        for operator, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(operator, (ast.Eq, ast.NotEq)):
                continue
            if is_float_constant(left) or is_float_constant(right):
                yield self.finding(
                    module,
                    node,
                    "exact float equality in an analytic model; use "
                    "math.isclose(...) (or pytest.approx in tests)",
                )
                return
