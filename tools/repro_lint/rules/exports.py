"""RPR002: ``__all__`` / registry import-surface sync.

Two statically-checkable halves of the same invariant:

1. Every name listed in a module's ``__all__`` must actually be bound at
   module level (defined, assigned or imported), so the star-import surface
   never advertises a name that raises ``AttributeError``.
2. Every id string registered with a ``register("id", ...)``-style registry
   (schemes, placements, backends) must appear as a literal in at least one
   import-surface test file (``tests/test_*surface*.py``), so dropping or
   renaming a registry entry breaks a test instead of silently shrinking the
   public catalogue.  The cross-check only runs when at least one surface
   test file is part of the linted path set.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro_lint.framework import Finding, ParsedModule, ProjectRule, register_rule
from repro_lint.rules._helpers import attr_chain


def _literal_names(node: ast.AST) -> Optional[List[Tuple[str, ast.AST]]]:
    """Extract ``__all__`` entries from a list/tuple literal (or sorted(...))."""
    if isinstance(node, ast.Call):
        dotted = attr_chain(node.func)
        if dotted == "sorted" and len(node.args) == 1 and not node.keywords:
            return _literal_names(node.args[0])
        return None
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    names = []
    for element in node.elts:
        if isinstance(element, ast.Constant) and isinstance(element.value, str):
            names.append((element.value, element))
        else:
            return None  # dynamic element: cannot analyse statically
    return names


def _bound_names(tree: ast.Module) -> Tuple[Set[str], bool]:
    """Names bound at module level, plus whether a star import is present.

    Descends into module-level ``if``/``try``/``for``/``while``/``with``
    bodies (conditional definitions still bind at import time) but not into
    functions or classes.
    """
    bound: Set[str] = set()
    star = False

    def bind_target(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            bound.add(target.id)
        elif isinstance(target, ast.Starred):
            bind_target(target.value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                bind_target(element)

    def visit(statements: Sequence[ast.stmt]) -> None:
        nonlocal star
        for statement in statements:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(statement.name)
            elif isinstance(statement, ast.Assign):
                for target in statement.targets:
                    bind_target(target)
            elif isinstance(statement, ast.AnnAssign):
                bind_target(statement.target)
            elif isinstance(statement, ast.AugAssign):
                bind_target(statement.target)
            elif isinstance(statement, ast.Import):
                for alias in statement.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(statement, ast.ImportFrom):
                for alias in statement.names:
                    if alias.name == "*":
                        star = True
                    else:
                        bound.add(alias.asname or alias.name)
            elif isinstance(statement, ast.If):
                visit(statement.body)
                visit(statement.orelse)
            elif isinstance(statement, ast.Try):
                visit(statement.body)
                for handler in statement.handlers:
                    visit(handler.body)
                visit(statement.orelse)
                visit(statement.finalbody)
            elif isinstance(statement, (ast.For, ast.AsyncFor, ast.While)):
                if isinstance(statement, (ast.For, ast.AsyncFor)):
                    bind_target(statement.target)
                visit(statement.body)
                visit(statement.orelse)
            elif isinstance(statement, (ast.With, ast.AsyncWith)):
                for item in statement.items:
                    if item.optional_vars is not None:
                        bind_target(item.optional_vars)
                visit(statement.body)

    visit(tree.body)
    return bound, star


def _is_surface_test(display_path: str) -> bool:
    name = PurePosixPath(display_path).name
    return name.startswith("test_") and "surface" in name and name.endswith(".py")


def _is_test_or_bench(display_path: str) -> bool:
    name = PurePosixPath(display_path).name
    return (
        name.startswith(("test_", "bench_", "conftest"))
        or "/tests/" in display_path
        or display_path.startswith("tests/")
        or "/benchmarks/" in display_path
        or display_path.startswith("benchmarks/")
    )


@register_rule
class ExportSyncRule(ProjectRule):
    code = "RPR002"
    name = "import-surface-sync"
    summary = (
        "__all__ entries must be bound in the module; registry ids must be "
        "covered by an import-surface test"
    )

    # ---------------------------------------------------------------- per file
    def applies_to(self, display_path: str) -> bool:
        return True

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        bound, star = _bound_names(module.tree)
        # A star import or a PEP 562 module ``__getattr__`` makes the
        # namespace dynamic: any __all__ entry may resolve at runtime, so
        # only the duplicate check stays decidable.
        dynamic = star or "__getattr__" in bound
        for statement in module.tree.body:
            target_names = []
            if isinstance(statement, ast.Assign):
                target_names = [
                    target.id
                    for target in statement.targets
                    if isinstance(target, ast.Name)
                ]
                value = statement.value
            elif isinstance(statement, ast.AugAssign) and isinstance(
                statement.target, ast.Name
            ):
                target_names = [statement.target.id]
                value = statement.value
            else:
                continue
            if "__all__" not in target_names:
                continue
            entries = _literal_names(value)
            if entries is None:
                continue  # dynamically built __all__: out of static reach
            seen: Set[str] = set()
            for name, node in entries:
                if name in seen:
                    yield self.finding(
                        module, node, f"duplicate __all__ entry {name!r}"
                    )
                seen.add(name)
                if not dynamic and name not in bound:
                    yield self.finding(
                        module,
                        node,
                        f"__all__ exports {name!r} but the module never "
                        "defines or imports it",
                    )

    # ------------------------------------------------------------- project wide
    def check_project(self, modules: Sequence[ParsedModule]) -> Iterator[Finding]:
        surface_literals: Set[str] = set()
        surface_present = False
        registered: List[Tuple[ParsedModule, ast.Call, str]] = []

        for module in modules:
            if _is_surface_test(module.display_path):
                surface_present = True
                for node in ast.walk(module.tree):
                    if isinstance(node, ast.Constant) and isinstance(node.value, str):
                        surface_literals.add(node.value)
                continue
            if _is_test_or_bench(module.display_path):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                dotted = attr_chain(node.func)
                if dotted is None:
                    continue
                if dotted != "register" and not dotted.endswith(".register"):
                    continue
                if not node.args:
                    continue
                first = node.args[0]
                if isinstance(first, ast.Constant) and isinstance(first.value, str):
                    registered.append((module, node, first.value))

        if not surface_present:
            return  # linting a subset without tests: nothing to cross-check

        for module, node, registry_id in registered:
            if registry_id not in surface_literals:
                yield self.finding(
                    module,
                    node,
                    f"registry id {registry_id!r} is not covered by any "
                    "import-surface test (tests/test_*surface*.py)",
                )
