"""Shared AST helpers for the rule implementations."""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set


def attr_chain(node: ast.AST) -> Optional[str]:
    """Render ``np.random.default_rng`` style dotted names, else ``None``."""
    parts = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def imported_names_from(tree: ast.Module, module: str) -> Set[str]:
    """Local aliases bound by ``from <module> import name [as alias]``."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


def walk_functions(tree: ast.Module) -> Iterator[ast.AST]:
    """Yield every function/lambda body owner in the module."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def is_str_constant(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, str)


def is_bytes_constant(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, bytes)


def is_float_constant(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, float)
