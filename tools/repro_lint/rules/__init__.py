"""Rule catalogue: importing this package registers every rule.

Stable codes:

- ``RPR001`` -- seeded determinism on the simulation/engine paths
- ``RPR002`` -- ``__all__`` / registry import-surface sync
- ``RPR003`` -- bytes-vs-str payload safety in ``storage/`` and ``core/``
- ``RPR004`` -- hygiene: mutable defaults, broad excepts, float equality
- ``RPR005`` -- no function-local imports of determinism-sensitive modules
"""

from __future__ import annotations

from repro_lint.rules import (  # noqa: F401  (import-for-side-effect)
    bytes_safety,
    determinism,
    exports,
    hygiene,
    imports,
)
