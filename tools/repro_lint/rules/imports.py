"""RPR005: no function-local imports of determinism-sensitive modules.

RPR001 audits RNG and clock use by scanning module surfaces; a
``def f(): import random`` buried in a function body hides that use from
the audit (and from reviewers grepping the import block).  Library code
must import ``random``/``time``/``datetime``/``secrets``/``uuid`` and
``numpy.random`` at module top.  Lazy imports of *other* modules (the
circular-import escape hatch used by the registries) stay allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro_lint.framework import Finding, ParsedModule, Rule, register_rule

#: Modules whose use must be visible at module top (root package names).
SENSITIVE_ROOTS = frozenset({"random", "time", "datetime", "secrets", "uuid"})

#: Library-code path fragments this rule polices (tests/benchmarks may
#: lazily import whatever their fixtures need).
LIBRARY_PATHS = ("src/repro/",)


def _sensitive_module(dotted: str) -> bool:
    root = dotted.split(".")[0]
    if root in SENSITIVE_ROOTS:
        return True
    return dotted == "numpy.random" or dotted.startswith("numpy.random.")


@register_rule
class LocalImportRule(Rule):
    code = "RPR005"
    name = "local-determinism-import"
    summary = (
        "determinism-sensitive modules (random/time/datetime/secrets/uuid/"
        "numpy.random) must be imported at module top in library code"
    )

    def applies_to(self, display_path: str) -> bool:
        return any(fragment in display_path for fragment in LIBRARY_PATHS)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for owner in ast.walk(module.tree):
            if not isinstance(owner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(owner):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if _sensitive_module(alias.name):
                            yield self.finding(
                                module,
                                node,
                                f"function-local `import {alias.name}` in "
                                f"{owner.name}() hides RNG/clock use from "
                                "determinism auditing (RPR001); move it to "
                                "module top",
                            )
                elif isinstance(node, ast.ImportFrom):
                    if node.module and _sensitive_module(node.module):
                        yield self.finding(
                            module,
                            node,
                            f"function-local `from {node.module} import ...` "
                            f"in {owner.name}() hides RNG/clock use from "
                            "determinism auditing (RPR001); move it to "
                            "module top",
                        )
