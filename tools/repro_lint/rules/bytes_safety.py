"""RPR003: bytes-vs-str payload safety in ``storage/`` and ``core/``.

Block payloads are raw ``bytes`` (since PR 6, often read-only ``memoryview``
slices of an mmap'd segment file).  Stringifying them -- ``str(payload)``,
f-string interpolation, ``payload.decode()`` or concatenation with text --
either corrupts data (``str(b"..")`` produces the repr) or raises only on
the rarely-exercised degraded-read path.  ``{payload!r}`` in messages stays
allowed: the repr is the intended form for diagnostics.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro_lint.framework import Finding, ParsedModule, Rule, register_rule
from repro_lint.rules._helpers import is_bytes_constant, is_str_constant

#: Path fragments of the zero-copy payload surface.
PAYLOAD_PATHS = ("repro/storage/", "repro/core/")

#: Variable/attribute names treated as block payloads.
PAYLOAD_NAMES = frozenset(
    {
        "payload",
        "payloads",
        "block_payload",
        "parity_payload",
        "payload_bytes",
        "payload_view",
        "raw_payload",
        "new_payload",
    }
)


def _is_payload_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id in PAYLOAD_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in PAYLOAD_NAMES
    if isinstance(node, ast.Subscript):
        return _is_payload_expr(node.value)
    return False


def _describe(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        return _describe(node.value) + "[...]"
    return "payload"


@register_rule
class BytesSafetyRule(Rule):
    code = "RPR003"
    name = "bytes-payload-safety"
    summary = (
        "block payloads are bytes: no str(payload), f-string interpolation, "
        ".decode() or str/bytes concatenation"
    )

    def applies_to(self, display_path: str) -> bool:
        return any(fragment in display_path for fragment in PAYLOAD_PATHS)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node)
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
                yield from self._check_concat(module, node)
            elif isinstance(node, ast.FormattedValue):
                yield from self._check_fstring(module, node)

    def _check_call(self, module: ParsedModule, node: ast.Call) -> Iterator[Finding]:
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id == "str"
            and len(node.args) == 1
            and _is_payload_expr(node.args[0])
        ):
            name = _describe(node.args[0])
            yield self.finding(
                module,
                node,
                f"str({name}) stringifies a bytes payload (produces the "
                f"repr, not the data); use {name}.hex() or {name}!r in "
                "diagnostics",
            )
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "decode"
            and _is_payload_expr(func.value)
        ):
            name = _describe(func.value)
            yield self.finding(
                module,
                node,
                f"{name}.decode(...) treats an opaque block payload as "
                "text; payloads must stay bytes end to end",
            )

    def _check_concat(self, module: ParsedModule, node: ast.BinOp) -> Iterator[Finding]:
        left, right = node.left, node.right
        if (is_str_constant(left) and is_bytes_constant(right)) or (
            is_bytes_constant(left) and is_str_constant(right)
        ):
            yield self.finding(
                module,
                node,
                "implicit str/bytes concatenation always raises TypeError "
                "at runtime",
            )
            return
        for text, blob in ((left, right), (right, left)):
            if is_str_constant(text) and _is_payload_expr(blob):
                yield self.finding(
                    module,
                    node,
                    f"concatenating text with bytes payload "
                    f"`{_describe(blob)}` raises TypeError on the read path",
                )
                return

    def _check_fstring(
        self, module: ParsedModule, node: ast.FormattedValue
    ) -> Iterator[Finding]:
        # conversion: -1 none, 115 's', 114 'r', 97 'a'.  !r / !a are fine.
        if node.conversion in (114, 97):
            return
        if _is_payload_expr(node.value):
            name = _describe(node.value)
            yield self.finding(
                module,
                node,
                f"f-string interpolates bytes payload `{name}` via str(); "
                f"use {{{name}!r}} or {name}.hex() for diagnostics",
            )
