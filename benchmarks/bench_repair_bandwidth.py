"""Extension bench: byte-level repair bandwidth per scheme.

Quantifies the claim behind Fig. 13 and Table IV: AE codes repair any single
failure with two block reads while RS(k, m) needs ``k``, so the repair traffic
after a disaster differs by a large factor at equal storage overhead.
"""

from __future__ import annotations

from perf_record import record_entry
from repro.analysis.repair_cost import disaster_traffic_table, single_failure_table
from repro.core.parameters import AEParameters
from repro.simulation.metrics import PAPER_SCHEMES, format_table

BLOCK_SIZE = 4096
MISSING_BLOCKS = 100_000


def test_single_failure_repair_costs(benchmark, print_tables):
    rows = benchmark(single_failure_table, PAPER_SCHEMES, BLOCK_SIZE)
    by_scheme = {row["scheme"]: row for row in rows}
    assert by_scheme["AE(3,2,5)"]["blocks read"] == 2
    assert by_scheme["RS(10,4)"]["blocks read"] == 10
    # At equal overhead (300%), AE reads 2 blocks where RS(4,12) reads 4.
    assert by_scheme["AE(3,2,5)"]["blocks read"] < by_scheme["RS(4,12)"]["blocks read"]
    if print_tables:
        print("\nSingle-failure repair cost\n" + format_table(rows))
    # Analytic read counts are machine-independent, so they gate exactly
    # (metric names containing "read" gate lower-is-better).
    record_entry(
        "repair",
        "analytic/single-failure@4096",
        scheme="paper-schemes",
        block_size=BLOCK_SIZE,
        seed=0,
        metrics={
            "ae_3_2_5_blocks_read": float(by_scheme["AE(3,2,5)"]["blocks read"]),
            "rs_10_4_blocks_read": float(by_scheme["RS(10,4)"]["blocks read"]),
            "rs_4_12_blocks_read": float(by_scheme["RS(4,12)"]["blocks read"]),
        },
        gates=["ae_3_2_5_blocks_read", "rs_10_4_blocks_read", "rs_4_12_blocks_read"],
    )


def test_disaster_repair_traffic(benchmark, print_tables):
    """Traffic to repair 100k missing blocks, using Fig. 13-like single-failure
    fractions (high for AE, low for RS in small disasters)."""
    fractions = {
        "AE(1,-,-)": 0.95,
        "AE(2,2,5)": 0.97,
        "AE(3,2,5)": 0.98,
        "RS(10,4)": 0.35,
        "RS(8,2)": 0.35,
        "RS(5,5)": 0.35,
        "RS(4,12)": 0.35,
    }
    rounds = {"AE(1,-,-)": 1.6, "AE(2,2,5)": 1.3, "AE(3,2,5)": 1.2}
    rows = benchmark(
        disaster_traffic_table,
        PAPER_SCHEMES,
        MISSING_BLOCKS,
        BLOCK_SIZE,
        fractions,
        rounds,
    )
    by_scheme = {row["scheme"]: row for row in rows}
    # The paper's shape: every AE setting moves less repair traffic than every
    # RS setting, because single failures dominate and cost a fixed 2 reads.
    ae_max = max(
        by_scheme[name]["bytes transferred"]
        for name in ("AE(1,-,-)", "AE(2,2,5)", "AE(3,2,5)")
    )
    rs_min = min(
        by_scheme[name]["bytes transferred"]
        for name in ("RS(10,4)", "RS(8,2)", "RS(5,5)", "RS(4,12)")
    )
    assert ae_max < rs_min
    if print_tables:
        print("\nDisaster repair traffic (100k missing blocks)\n" + format_table(rows))
