"""Batched vs. per-block repair throughput, with a recorded perf trajectory.

The repair counterpart of ``bench_batch_ingest``: after a disaster the
cluster repair manager can either rebuild blocks one decoder call at a time
(``repair(batched=False)``, the historical loop) or plan each round, bulk-read
the surviving inputs and reconstruct every target of the round in one matrix
XOR pass (the default).  Both paths must produce bit-identical payloads; the
batched one must be at least 3x faster at 4 KiB blocks.

Measured numbers are recorded into ``BENCH_repair.json`` through
:mod:`perf_record`; CI gates fresh snapshots against the committed baseline
(see ``docs/benchmarks.md``).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch_repair.py -q -s

``REPRO_BENCH_SMOKE=1`` shrinks the workload for CI smoke runs.
"""

from __future__ import annotations

import os
import time

import numpy as np

from perf_record import record_entry
from repro.core.encoder import Entangler
from repro.core.parameters import AEParameters
from repro.core.xor import payloads_equal
from repro.storage.cluster import StorageCluster
from repro.storage.failures import disaster_for_target
from repro.storage.placement import RandomPlacement
from repro.storage.repair import ClusterRepairManager
from repro.system.service import StorageConfig, StorageService

BLOCK_SIZE = 4096
SEED = 7
_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
DATA_BLOCKS = 120 if _SMOKE else 400
REPEAT = 2 if _SMOKE else 4
# A wide cluster, as in the paper's disaster simulations: the per-block
# reference pays the candidate scan and placement bookkeeping once per
# repaired block, the batched path once per round.
LOCATIONS = 160
FAILED_LOCATIONS = 32


def _entangled_cluster():
    """AE(3,2,5) lattice stored on a fresh cluster; returns the pieces."""
    params = AEParameters.triple(2, 5)
    encoder = Entangler(params, block_size=BLOCK_SIZE)
    cluster = StorageCluster(LOCATIONS, RandomPlacement(LOCATIONS, seed=SEED))
    rng = np.random.default_rng(SEED)
    data = rng.integers(0, 256, size=(DATA_BLOCKS, BLOCK_SIZE), dtype=np.uint8)
    originals = {}
    for row in data:
        encoded = encoder.entangle(row)
        for block in encoded.all_blocks():
            originals[block.block_id] = block.payload
            cluster.put_block(block)
    return encoder, cluster, originals


def _timed_repair(batched: bool):
    """Best-of-N wall time of one full repair run (fresh disaster each time)."""
    best = float("inf")
    repaired_bytes = 0
    for _ in range(REPEAT):
        encoder, cluster, originals = _entangled_cluster()
        cluster.fail_locations(range(FAILED_LOCATIONS))
        manager = ClusterRepairManager(encoder.lattice, cluster, BLOCK_SIZE)
        missing = manager.missing_blocks()
        started = time.perf_counter()
        report = manager.repair(batched=batched)
        best = min(best, time.perf_counter() - started)
        assert report.data_loss == 0 and not report.unrecovered
        repaired_bytes = report.repaired_count * BLOCK_SIZE
        for block_id in missing:
            assert payloads_equal(cluster.get_block(block_id), originals[block_id])
    return best, repaired_bytes


def test_batch_repair_speedup_at_4k(print_tables):
    """Acceptance gate: >= 3x repair throughput at 4 KiB, bit-identical bytes."""
    t_sequential, repaired_bytes = _timed_repair(batched=False)
    t_batched, _ = _timed_repair(batched=True)
    speedup = t_sequential / t_batched
    mb = repaired_bytes / 1e6
    if print_tables:
        print(
            f"\nAE(3,2,5) repair @ 4 KiB ({repaired_bytes // BLOCK_SIZE} blocks): "
            f"sequential {mb / t_sequential:7.1f} MB/s, "
            f"batched {mb / t_batched:7.1f} MB/s, speedup {speedup:.1f}x"
        )
    record_entry(
        "repair",
        "ae-3-2-5/batch-speedup@4096",
        scheme="ae-3-2-5",
        block_size=BLOCK_SIZE,
        seed=SEED,
        metrics={
            "speedup": speedup,
            "batched_mb_s": mb / t_batched,
            "sequential_mb_s": mb / t_sequential,
            "repaired_blocks": repaired_bytes / BLOCK_SIZE,
        },
        gates=["speedup"],
    )
    # The acceptance floor holds at full scale; the shrunken smoke workload
    # keeps a looser floor (its regression gate is the BENCH_*.json compare).
    floor = 2.0 if _SMOKE else 3.0
    assert speedup >= floor, f"batched repair only {speedup:.2f}x faster than per-block"


def test_whole_site_disaster_recovery(print_tables):
    """Whole-domain reconstruction: lose ``site:0``, rebuild with zero data loss.

    Exercises the batched repair path end to end at the service level
    (scheme repair over a ``ClusterBlockSource`` + grouped relocation) under
    the ``spread-domains`` placement, for entanglement and the RS baseline.
    """
    rng = np.random.default_rng(SEED)
    payload = rng.integers(0, 256, size=DATA_BLOCKS * BLOCK_SIZE, dtype=np.uint8).tobytes()
    for scheme_id in ("ae-3-2-5", "rs-10-4"):
        service = StorageService.open(
            StorageConfig(
                scheme=scheme_id,
                block_size=BLOCK_SIZE,
                # 7 sites x 4 nodes: losing one site removes at most two of a
                # 14-position RS(10,4) stripe, within the parity budget.
                topology="sites=7,racks=2,nodes=2",
                placement="spread-domains",
                seed=SEED,
            )
        )
        service.put("doc", payload)
        disaster = disaster_for_target(service.topology, "site:0")
        service.fail_locations(disaster.failed_locations)
        started = time.perf_counter()
        report = service.repair()
        elapsed = time.perf_counter() - started
        assert report.data_loss == 0, f"{scheme_id}: lost data in a site disaster"
        assert service.status().unavailable_blocks == 0
        assert service.get("doc") == payload
        mb = report.repaired_count * BLOCK_SIZE / 1e6
        if print_tables:
            print(
                f"site:0 disaster [{scheme_id}]: {report.repaired_count} blocks "
                f"rebuilt in {report.rounds} rounds at {mb / elapsed:7.1f} MB/s"
            )
        record_entry(
            "repair",
            f"{scheme_id}/site-disaster@4096",
            scheme=scheme_id,
            block_size=BLOCK_SIZE,
            seed=SEED,
            metrics={
                "data_loss": float(report.data_loss),
                "repaired_blocks": float(report.repaired_count),
                "repair_mb_s": mb / elapsed,
            },
            gates=["data_loss"],
        )
