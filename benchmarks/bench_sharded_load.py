"""Sharded-namespace acceptance benchmarks for the federation front-end.

Two gates, recorded into ``BENCH_shard.json`` (docs/benchmarks.md):

* ``test_sharding_scales_commit_throughput`` -- the closed-loop loadgen
  (8 clients, zero think time) against a disk-backed, fsync'd federation
  at 4 shards versus 1, same client fleet on both sides.  Each shard is
  an independent ``StorageService`` with its own state lock, metadata WAL
  and backend root, so commits routed to different shards overlap; the
  single shard serializes every commit -- including its GIL-releasing
  ``fsync`` waits -- behind one lock.  The floor is hardware-aware: on a
  host with >= 4 CPUs the shards genuinely run in parallel and the run
  must show >= 2x ops/sec; on a single-CPU host the GIL serializes all
  Python and the filesystem journal serializes most of each fsync, so
  only a no-regression floor (0.9x) is enforceable -- sharding must not
  *cost* throughput.  The CPU count is recorded in the snapshot, making
  the committed baseline self-describing.
* ``test_join_rebalance_moves_the_minimum`` -- growing a 4-shard
  federation by one shard must re-home a non-zero fraction of documents
  bounded by ``1.5/(M+1)`` (consistent hashing's minimal-movement
  property, vnode variance allowed for), every move must target the new
  shard, and every document must read back byte-exact afterwards.  The
  moved fraction is recorded as an informational metric: it gates in
  neither direction (lower is not better -- zero movement would mean the
  ring ignored the join).

``REPRO_BENCH_SMOKE=1`` shrinks the workloads and relaxes the in-test
floors for CI smoke runs; the regression gate proper is the BENCH
snapshot compare (``perf_record.py``).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_sharded_load.py -q -s \
        --benchmark-disable
"""

from __future__ import annotations

import os

from perf_record import record_entry

from repro.system.loadgen import run_load
from repro.system.service import StorageConfig
from repro.system.sharding import ShardedStorageService

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

SCHEME = "ae-3-2-5"
SEED = 7
BLOCK_SIZE = 512
CLIENTS = 8
SHARDS = 4

#: Closed-loop scaling run (disk backend, fsync on, zero think time).
#: Put-only mix: commits are the path the single shard serializes (the
#: "one metadata WAL" bottleneck); cached gets would only dilute the
#: signal with GIL-bound work that cannot scale anywhere.
LOAD_OPS_PER_CLIENT = 8 if _SMOKE else 40
LOAD_PAYLOAD = 1024
LOAD_DOCUMENTS = 32
LOAD_MIX = (1.0, 0.0, 0.0)
#: Best-of-K per configuration: container IO throughput fluctuates ~2x
#: run to run, so a single closed-loop pass cannot anchor a ratio.
LOAD_REPS = 1 if _SMOKE else 3

#: Join-rebalance run (memory backend).
JOIN_DOCUMENTS = 48 if _SMOKE else 160
JOIN_PAYLOAD = 640


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _scaling_floor(cpus: int) -> float:
    """The speedup this host can honestly sustain (see module docstring).

    With >= 4 CPUs the four shards commit in true parallel and 2x is the
    acceptance floor.  With one CPU the GIL serializes all Python work
    and the filesystem journal serializes the fsyncs, so measured
    scaling hovers at 1.0-1.3x amid ~2x container-IO noise; the only
    robust assertion is that sharding does not cost throughput (0.9x
    noise allowance).  Smoke runs use tiny workloads and relax each
    floor further.
    """
    if _SMOKE:
        return 0.8 if cpus < 4 else 1.2
    if cpus >= 4:
        return 2.0
    if cpus >= 2:
        return 1.2
    return 0.9


def _run_federation(shards: int, data_dir: str):
    federation = ShardedStorageService.open(
        StorageConfig(
            scheme=SCHEME,
            location_count=16,
            block_size=BLOCK_SIZE,
            seed=SEED,
            backend="disk",
            data_dir=data_dir,
            fsync=True,
            shards=shards if shards > 1 else None,
        ),
        workers=CLIENTS,
    )
    try:
        return run_load(
            federation,
            clients=CLIENTS,
            ops_per_client=LOAD_OPS_PER_CLIENT,
            payload_bytes=LOAD_PAYLOAD,
            documents=LOAD_DOCUMENTS,
            think_seconds=0.0,
            seed=SEED,
            mix=LOAD_MIX,
        )
    finally:
        federation.close()


def _best_run(shards: int, root: str):
    """Best of ``LOAD_REPS`` closed-loop passes (fresh data dir each)."""
    runs = [
        _run_federation(shards, os.path.join(root, f"rep{number}"))
        for number in range(LOAD_REPS)
    ]
    return max(runs, key=lambda report: report.ops_per_sec)


def test_sharding_scales_commit_throughput(tmp_path, print_tables):
    """Acceptance gate: sharded ops/sec floor, 4 shards vs 1 (disk, fsync)."""
    single = _best_run(1, str(tmp_path / "m1"))
    sharded = _best_run(SHARDS, str(tmp_path / "m4"))
    speedup = sharded.ops_per_sec / single.ops_per_sec
    cpus = _cpus()
    if print_tables:
        print()
        print(f"closed loop, {CLIENTS} clients, zero think, best of "
              f"{LOAD_REPS} [{SCHEME}, disk, fsync, {cpus} cpu(s)]:")
        print(f"  1 shard : {single.summary()}")
        print(f"  {SHARDS} shards: {sharded.summary()}")
        print(f"  scaling : {speedup:.1f}x")
    record_entry(
        "shard",
        f"{SCHEME}/federation-scaling@{SHARDS}shards",
        scheme=SCHEME,
        block_size=BLOCK_SIZE,
        seed=SEED,
        metrics={
            "ops_per_sec": sharded.ops_per_sec,
            "ops_per_sec_single_shard": single.ops_per_sec,
            "speedup": speedup,
            "cpus": float(cpus),
        },
        gates=["speedup"],
    )
    floor = _scaling_floor(cpus)
    assert speedup >= floor, (
        f"{SHARDS} shards only {speedup:.2f}x one shard "
        f"(floor {floor}x on {cpus} cpu(s)); per-shard commits are not "
        f"overlapping"
    )
    assert sharded.overloads == 0, (
        "the per-shard queue depth must absorb the client fleet"
    )


def test_join_rebalance_moves_the_minimum(print_tables):
    """Acceptance gate: a join re-homes 0 < fraction <= 1.5/(M+1), byte-exact."""
    federation = ShardedStorageService.open(
        StorageConfig(
            scheme=SCHEME,
            location_count=16,
            block_size=BLOCK_SIZE,
            seed=SEED,
            shards=SHARDS,
        )
    )
    try:
        payloads = {
            f"doc-{number:04d}": bytes(
                (number + offset) % 251 for offset in range(JOIN_PAYLOAD)
            )
            for number in range(JOIN_DOCUMENTS)
        }
        for name, payload in payloads.items():
            federation.put(name, payload)
        report = federation.add_shard()
        bound = 1.5 / (SHARDS + 1)
        if print_tables:
            print()
            print(f"join {SHARDS} -> {SHARDS + 1} shards over "
                  f"{JOIN_DOCUMENTS} documents [{SCHEME}, memory]:")
            print(f"  {report.summary()}")
            print(f"  moved fraction: {report.moved_fraction:.3f} "
                  f"(bound {bound:.3f})")
        record_entry(
            "shard",
            f"{SCHEME}/join-rebalance@{SHARDS}+1shards",
            scheme=SCHEME,
            block_size=BLOCK_SIZE,
            seed=SEED,
            metrics={
                "moved_fraction": report.moved_fraction,
                "moved_documents": float(report.moved_documents),
                "movement_bound": bound,
            },
            gates=[],
        )
        assert 0 < report.moved_fraction <= bound, (
            f"join moved {report.moved_fraction:.3f} of documents "
            f"(bound {bound:.3f})"
        )
        new_shard = max(federation.shard_ids)
        assert all(dst == new_shard for _src, dst in report.moves.values()), (
            "a join must only move documents onto the new shard"
        )
        for name, payload in payloads.items():
            assert federation.get(name) == payload
    finally:
        federation.close()
