"""Recorded perf trajectory: write and gate ``BENCH_*.json`` snapshots.

Benchmarks call :func:`record_entry` to persist their measured numbers into a
small JSON snapshot (``BENCH_repair.json``, ``BENCH_ingest.json``, ...).
Committed snapshots at the repository root are the *baseline* trajectory; a
fresh run writes its snapshot wherever ``REPRO_BENCH_DIR`` points (CI uses a
scratch directory) and :func:`compare_snapshots` -- also the module's CLI --
fails when a gated metric regressed by more than the tolerance.

Snapshot format (``format`` 1)::

    {
      "format": 1,
      "benchmark": "repair",
      "entries": {
        "<key>": {
          "scheme": "ae-3-2-5",
          "block_size": 4096,
          "seed": 7,
          "metrics": {"speedup": 5.1, "batched_mb_s": 310.0, ...},
          "gates": ["speedup"]
        }
      }
    }

Only the metrics named in ``gates`` are regression-gated; the rest are
informational (absolute MB/s varies across machines, dimensionless ratios
and analytic read counts do not).  Metrics whose name mentions reads, bytes,
rounds, time or loss gate in the *lower-is-better* direction; everything else
(throughput, speedup) gates higher-is-better.  A lower-is-better baseline of
zero (e.g. ``data_loss``) therefore fails on *any* increase.

CLI::

    python benchmarks/perf_record.py --baseline BENCH_repair.json \
        --current /tmp/bench-out/BENCH_repair.json [--max-regression 0.2]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional

SNAPSHOT_FORMAT = 1

#: Metric-name fragments gated in the lower-is-better direction.
_LOWER_BETTER = ("read", "bytes", "round", "time", "seconds", "loss")


def bench_dir() -> str:
    """Directory snapshots are written to (``REPRO_BENCH_DIR`` or repo root)."""
    configured = os.environ.get("REPRO_BENCH_DIR", "")
    if configured:
        os.makedirs(configured, exist_ok=True)
        return configured
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def bench_path(name: str) -> str:
    """Path of the ``BENCH_<name>.json`` snapshot for this run."""
    return os.path.join(bench_dir(), f"BENCH_{name}.json")


def load_snapshot(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        snapshot = json.load(handle)
    if int(snapshot.get("format", 0)) != SNAPSHOT_FORMAT:
        raise ValueError(f"unsupported snapshot format in {path!r}")
    return snapshot


def record_entry(
    name: str,
    key: str,
    *,
    scheme: str,
    block_size: int,
    seed: int,
    metrics: Dict[str, float],
    gates: Optional[List[str]] = None,
) -> str:
    """Merge one benchmark entry into ``BENCH_<name>.json``; returns the path.

    Entries are keyed so several tests (and repeated runs) can contribute to
    one snapshot: a re-run of the same test replaces its own entry and leaves
    the others alone.
    """
    path = bench_path(name)
    try:
        snapshot = load_snapshot(path)
    except (FileNotFoundError, ValueError, json.JSONDecodeError):
        snapshot = {"format": SNAPSHOT_FORMAT, "benchmark": name, "entries": {}}
    entries = snapshot.setdefault("entries", {})
    entries[key] = {
        "scheme": scheme,
        "block_size": int(block_size),
        "seed": int(seed),
        "metrics": {metric: float(value) for metric, value in metrics.items()},
        "gates": list(gates or []),
    }
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def _lower_is_better(metric: str) -> bool:
    lowered = metric.lower()
    return any(fragment in lowered for fragment in _LOWER_BETTER)


def compare_snapshots(
    baseline: Dict[str, object],
    current: Dict[str, object],
    max_regression: float = 0.2,
) -> List[str]:
    """Regression check of ``current`` against ``baseline``.

    Returns a list of human-readable failures (empty = pass).  Only metrics
    listed in a baseline entry's ``gates`` are compared; a gated metric
    missing from the current snapshot is itself a failure.  ``max_regression``
    is the tolerated relative drop (0.2 = 20%).
    """
    failures: List[str] = []
    base_entries = baseline.get("entries", {})
    cur_entries = current.get("entries", {})
    for key, base_entry in sorted(base_entries.items()):
        gates = base_entry.get("gates", [])
        if not gates:
            continue
        cur_entry = cur_entries.get(key)
        if cur_entry is None:
            failures.append(f"{key}: entry missing from current snapshot")
            continue
        for metric in gates:
            base_value = base_entry.get("metrics", {}).get(metric)
            cur_value = cur_entry.get("metrics", {}).get(metric)
            if base_value is None:
                continue
            if cur_value is None:
                failures.append(f"{key}.{metric}: missing from current snapshot")
                continue
            if _lower_is_better(metric):
                limit = base_value * (1.0 + max_regression)
                if cur_value > limit:
                    failures.append(
                        f"{key}.{metric}: {cur_value:g} exceeds baseline "
                        f"{base_value:g} by more than {max_regression:.0%}"
                    )
            else:
                limit = base_value * (1.0 - max_regression)
                if cur_value < limit:
                    failures.append(
                        f"{key}.{metric}: {cur_value:g} fell more than "
                        f"{max_regression:.0%} below baseline {base_value:g}"
                    )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate a fresh BENCH_*.json snapshot against the committed baseline."
    )
    parser.add_argument("--baseline", required=True, help="committed snapshot path")
    parser.add_argument("--current", required=True, help="freshly recorded snapshot path")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.2,
        help="tolerated relative regression on gated metrics (default 0.2 = 20%%)",
    )
    args = parser.parse_args(argv)
    try:
        baseline = load_snapshot(args.baseline)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"cannot read baseline {args.baseline!r}: {exc}", file=sys.stderr)
        return 2
    try:
        current = load_snapshot(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"cannot read current snapshot {args.current!r}: {exc}", file=sys.stderr)
        return 2
    failures = compare_snapshots(baseline, current, args.max_regression)
    if failures:
        print(f"perf regression vs {args.baseline}:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    gated = sum(1 for entry in baseline.get("entries", {}).values() if entry.get("gates"))
    print(f"{args.current}: {gated} gated entr{'y' if gated == 1 else 'ies'} within "
          f"{args.max_regression:.0%} of {args.baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
