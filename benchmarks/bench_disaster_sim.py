"""Scheme-agnostic disaster-simulation engine: throughput + legacy equivalence.

Two acceptance checks for the discrete-event engine
(:mod:`repro.simulation.engine`):

1. at fixed seeds the engine reproduces the legacy per-scheme models'
   disaster metrics exactly (AE lattice, RS stripes, replication).  The
   shim classes are subclasses of the engine adapters, so comparing against
   them only guards the shim mapping; the hard-coded ``GOLDEN`` numbers
   below were recorded from the *pre-engine* models and anchor the
   historical behaviour independently;
2. the event loop stays fast enough for paper-scale runs -- the benchmark
   reports blocks/sec and events/sec.
"""

from __future__ import annotations

import time

import numpy as np

from repro.simulation.engine import SimulationEngine, simulate_disasters
from repro.simulation.experiments import ExperimentConfig, sample_disaster
from repro.simulation.lattice_model import AELatticeModel
from repro.simulation.metrics import format_table
from repro.simulation.replication_model import ReplicationModel
from repro.simulation.rs_model import RSStripeModel
from repro.core.parameters import AEParameters
from repro.storage.failures import ChurnTrace
from repro.storage.maintenance import MaintenancePolicy

from conftest import bench_blocks

FRACTIONS = (0.10, 0.30, 0.50)

#: Fixed-seed metrics recorded from the pre-engine models (seed 7, 20,000
#: blocks, 100 locations).  Independent of the shim classes, so a behaviour
#: regression in the engine itself cannot hide behind the shims.
GOLDEN = {
    ("ae-3-2-5", 10): dict(data_loss=0, rounds=3, repaired_data=1945),
    ("ae-3-2-5", 30): dict(data_loss=0, rounds=6, repaired_data=5978),
    ("ae-3-2-5", 50): dict(data_loss=20, rounds=16, repaired_data=10023),
    ("rs-10-4", 10): dict(data_loss=67, vulnerable_data=103, blocks_read=12380),
    ("rs-10-4", 30): dict(data_loss=3387, vulnerable_data=4833, blocks_read=11190),
    ("rs-10-4", 50): dict(data_loss=9521, vulnerable_data=8719, blocks_read=1760),
    ("rep-3", 10): dict(data_loss=19, vulnerable_data=495),
    ("rep-3", 30): dict(data_loss=504, vulnerable_data=3705),
    ("rep-3", 50): dict(data_loss=2525, vulnerable_data=7590),
}


def test_engine_matches_pre_refactor_goldens():
    """Engine outcomes equal the recorded pre-engine model metrics."""
    config = _config()
    for (scheme_id, percent), expected in GOLDEN.items():
        offset = {10: 0, 30: 2, 50: 4}[percent]
        failed = sample_disaster(config, percent / 100.0, offset)
        engine = SimulationEngine(
            scheme_id, config.data_blocks, config.location_count, config.seed
        )
        policy = (
            MaintenancePolicy.FULL
            if scheme_id.startswith("ae")
            else MaintenancePolicy.MINIMAL
        )
        outcome = engine.run_outcome(failed, policy=policy)
        for metric, value in expected.items():
            assert getattr(outcome, metric) == value, (scheme_id, percent, metric)


def _config() -> ExperimentConfig:
    # Equivalence is asserted at a fixed reduced scale so the check is exact
    # and fast; the throughput benchmark below uses REPRO_BENCH_BLOCKS.
    return ExperimentConfig.quick(20_000)


def test_engine_matches_legacy_ae_model(print_tables):
    """Engine(ae-3-2-5) == AELatticeModel, metric by metric, per disaster."""
    config = _config()
    engine = SimulationEngine(
        "ae-3-2-5", config.data_blocks, config.location_count, config.seed
    )
    legacy = AELatticeModel(
        AEParameters.triple(2, 5), config.data_blocks, config.location_count, config.seed
    )
    for offset, fraction in enumerate(FRACTIONS):
        failed = sample_disaster(config, fraction, offset)
        outcome = engine.run_outcome(failed)
        reference = legacy.run_repair(failed, repair_parities=True)
        assert outcome.data_loss == reference.data_loss
        assert outcome.vulnerable_data == reference.vulnerable_data
        assert outcome.rounds == reference.rounds
        assert outcome.repaired_data == reference.repaired_data
        assert outcome.repaired_redundancy == reference.repaired_parities
        assert outcome.single_failure_repairs == reference.data_repaired_first_round
        minimal = engine.run_outcome(failed, policy=MaintenancePolicy.MINIMAL)
        reference_minimal = legacy.run_repair(failed, repair_parities=False)
        assert minimal.data_loss == reference_minimal.data_loss
        assert minimal.vulnerable_data == reference_minimal.vulnerable_data


def test_engine_matches_legacy_rs_model(print_tables):
    """Engine(rs-k-m) == RSStripeModel for the paper's RS settings."""
    config = _config()
    for k, m in ((10, 4), (4, 12)):
        engine = SimulationEngine(
            f"rs-{k}-{m}", config.data_blocks, config.location_count, config.seed
        )
        legacy = RSStripeModel(k, m, config.data_blocks, config.location_count, config.seed)
        for offset, fraction in enumerate(FRACTIONS):
            failed = sample_disaster(config, fraction, offset)
            outcome = engine.run_outcome(failed, policy=MaintenancePolicy.MINIMAL)
            reference = legacy.run_repair(failed)
            assert outcome.data_loss == reference.data_loss
            assert outcome.vulnerable_data == reference.vulnerable_data
            assert outcome.repaired_data == reference.repaired_data
            assert outcome.single_failure_repairs == reference.single_failure_repairs
            assert outcome.blocks_read == reference.blocks_read_for_repair
            assert outcome.initially_missing_data == reference.initially_missing_data


def test_engine_matches_legacy_replication_model(print_tables):
    """Engine(rep-n) == ReplicationModel for the paper's replication factors."""
    config = _config()
    for copies in (2, 3, 4):
        engine = SimulationEngine(
            f"rep-{copies}", config.data_blocks, config.location_count, config.seed
        )
        legacy = ReplicationModel(
            copies, config.data_blocks, config.location_count, config.seed
        )
        for offset, fraction in enumerate(FRACTIONS):
            failed = sample_disaster(config, fraction, offset)
            outcome = engine.run_outcome(failed, policy=MaintenancePolicy.MINIMAL)
            reference = legacy.run_repair(failed)
            assert outcome.data_loss == reference.data_loss
            assert outcome.vulnerable_data == reference.vulnerable_data
            full = engine.run_outcome(failed, policy=MaintenancePolicy.FULL)
            assert (
                full.repaired_data + full.repaired_redundancy
                == reference.repaired_copies
            )


def test_engine_throughput(print_tables):
    """Events/sec and blocks/sec of the engine across scheme families."""
    blocks = min(bench_blocks(), 200_000)
    rows = []
    for scheme_id in ("ae-3-2-5", "rs-10-4", "rep-3", "lrc-azure", "xor-geo"):
        engine = SimulationEngine(scheme_id, blocks, 100, seed=7)
        started = time.perf_counter()
        events = 0
        for offset, fraction in enumerate(FRACTIONS):
            engine.run_disaster(
                sample_disaster(ExperimentConfig(data_blocks=blocks), fraction, offset)
            )
            events += 1
        elapsed = time.perf_counter() - started
        rows.append(
            {
                "scheme": engine.scheme_name,
                "blocks": blocks,
                "events/sec": round(events / elapsed, 2),
                "blocks/sec": int(events * blocks / elapsed),
            }
        )
        # The availability-only engine must stay far above any byte-level
        # simulation: at least one full-population disaster per 30 s.
        assert events / elapsed > 0.1
    if print_tables:
        print("\nEngine throughput (disaster events over full populations)\n" + format_table(rows))


def test_engine_covers_every_registered_family(print_tables):
    """The acceptance matrix: six schemes, 10-50% disasters, metrics produced."""
    scheme_ids = ("ae-3-2-5", "rs-10-4", "rep-3", "lrc-azure", "lrc-xorbas", "xor-geo")
    results = simulate_disasters(
        scheme_ids, data_blocks=5_000, location_count=50, seed=7,
        fractions=(0.10, 0.30, 0.50),
    )
    assert len(results) == len(scheme_ids) * 3
    for metrics in results:
        assert 0 <= metrics.data_loss <= metrics.data_blocks
        assert 0 <= metrics.vulnerable_data <= metrics.data_blocks
    if print_tables:
        print("\nScheme-agnostic disaster metrics\n"
              + format_table([metrics.as_row() for metrics in results]))


def test_engine_churn_event_loop(print_tables):
    """The event loop replays churn traces with arrivals restoring data."""
    trace = ChurnTrace.poisson(50, 20, departure_rate=0.1, return_rate=0.5, seed=11)
    engine = SimulationEngine("rs-10-4", 5_000, 50, seed=7)
    run = engine.run_events(trace)
    assert len(run.steps) == len(trace.events)
    assert 0.0 <= run.min_availability <= run.mean_availability <= 1.0
    if print_tables:
        print("\nChurn replay (rs-10-4)\n" + format_table([run.as_row()]))
