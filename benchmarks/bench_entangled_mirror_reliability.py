"""Section IV-B1: 5-year reliability of entangled mirrors vs plain mirroring."""

from __future__ import annotations

from repro.analysis.reliability import five_year_comparison
from repro.simulation.metrics import format_table

TRIALS = 600


def test_entangled_mirror_five_year_reliability(benchmark, print_tables):
    results = benchmark.pedantic(
        five_year_comparison, kwargs={"drive_pairs": 10, "trials": TRIALS, "seed": 3},
        rounds=1, iterations=1,
    )
    mirroring = results["mirroring"]
    open_chain = results["entangled-open"]
    closed_chain = results["entangled-closed"]

    # Expected shape (paper: ~90% / ~98% reduction in loss probability).
    assert mirroring.loss_probability > 0
    assert open_chain.loss_probability <= mirroring.loss_probability
    assert closed_chain.loss_probability <= open_chain.loss_probability

    rows = [
        {
            "layout": result.layout,
            "loss probability (5y)": round(result.loss_probability, 4),
            "reduction vs mirroring": f"{result.improvement_over(mirroring):.0%}",
        }
        for result in results.values()
    ]
    if print_tables:
        print(f"\nEntangled mirror 5-year reliability ({TRIALS} trials)\n" + format_table(rows))
