"""Section V-C "Block Placements": placement skew of random placement, plus
balance gates for the topology-aware ``weighted`` and ``spread-domains``
policies of the placement registry."""

from __future__ import annotations

import numpy as np

from repro.core.blocks import DataId, ParityId
from repro.core.parameters import AEParameters
from repro.simulation.experiments import placement_balance_report
from repro.simulation.metrics import format_table
from repro.storage import placement as placement_registry
from repro.storage.placement import domain_balance, placement_balance
from repro.storage.topology import Topology, TopologyBuilder


def test_placement_balance(benchmark, experiment_config, print_tables):
    rows = benchmark.pedantic(
        placement_balance_report, args=(experiment_config,), rounds=1, iterations=1
    )
    rs_row = rows[0]
    # With n = 100 locations only a minority of RS(10,4) stripes spread their
    # 14 blocks over 14 distinct locations (the paper reports 38,429/100,000).
    spread_fraction = rs_row["stripes fully spread"] / rs_row["stripes"]
    assert 0.30 < spread_fraction < 0.48
    if print_tables:
        print("\nPlacement balance (random placement, n = 100)\n" + format_table(rows))


def _ae_blocks(count: int, params: AEParameters):
    blocks = []
    for index in range(1, count + 1):
        blocks.append(DataId(index))
        blocks.extend(ParityId(index, cls) for cls in params.strand_classes)
    return blocks


def test_weighted_placement_balance(benchmark, print_tables):
    """Blocks land proportionally to per-node capacity weights."""
    topology = (
        TopologyBuilder()
        .site("a").rack("r").nodes(4, capacity=1.0)
        .site("b").rack("r").nodes(4, capacity=2.0)
        .site("c").rack("r").nodes(2, capacity=4.0)
        .build()
    )
    params = AEParameters.triple(2, 5)
    policy = placement_registry.get("weighted", topology, params=params, seed=11)
    blocks = _ae_blocks(5_000, params)
    counts = benchmark.pedantic(
        placement_balance, args=(policy, blocks), rounds=1, iterations=1
    )
    capacities = topology.capacities()
    expected = capacities / capacities.sum() * len(blocks)
    # Every node stays within 15% of its capacity-proportional share.
    relative_error = np.abs(counts - expected) / expected
    assert counts.sum() == len(blocks)
    assert float(relative_error.max()) < 0.15, relative_error
    if print_tables:
        rows = [
            {
                "node": node.name,
                "capacity": node.capacity,
                "expected": round(float(expected[node.node_id]), 1),
                "placed": int(counts[node.node_id]),
            }
            for node in topology.nodes
        ]
        print("\nWeighted placement balance\n" + format_table(rows))


def test_spread_domains_placement_balance(benchmark, print_tables):
    """Domains fill evenly and no repair group collapses into one domain."""
    topology = Topology.parse("sites=5,racks=2,nodes=2")
    params = AEParameters.triple(2, 5)
    policy = placement_registry.get("spread-domains", topology, params=params)
    blocks = _ae_blocks(5_000, params)
    per_site = benchmark.pedantic(
        domain_balance, args=(policy, blocks), kwargs={"level": "site"},
        rounds=1, iterations=1,
    )
    # alpha+1 = 4 lanes rotate over 5 sites: per-site shares stay within 5%
    # of uniform for a large population.
    expected = len(blocks) / topology.site_count
    assert per_site.sum() == len(blocks)
    assert float(np.abs(per_site - expected).max()) / expected < 0.05
    # The spread invariant: a data block never shares a site with any of its
    # alpha parities.
    for index in range(1, 500):
        data_site = topology.domain_of(policy.location_for(DataId(index)), "site")
        for cls in params.strand_classes:
            parity_site = topology.domain_of(
                policy.location_for(ParityId(index, cls)), "site"
            )
            assert parity_site != data_site
    if print_tables:
        rows = [
            {"site": label, "blocks": int(count)}
            for label, count in zip(topology.domain_labels("site"), per_site)
        ]
        print("\nSpread-domains per-site balance\n" + format_table(rows))
