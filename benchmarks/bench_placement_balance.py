"""Section V-C "Block Placements": placement skew of random placement."""

from __future__ import annotations

from repro.simulation.experiments import placement_balance_report
from repro.simulation.metrics import format_table


def test_placement_balance(benchmark, experiment_config, print_tables):
    rows = benchmark.pedantic(
        placement_balance_report, args=(experiment_config,), rounds=1, iterations=1
    )
    rs_row = rows[0]
    # With n = 100 locations only a minority of RS(10,4) stripes spread their
    # 14 blocks over 14 distinct locations (the paper reports 38,429/100,000).
    spread_fraction = rs_row["stripes fully spread"] / rs_row["stripes"]
    assert 0.30 < spread_fraction < 0.48
    if print_tables:
        print("\nPlacement balance (random placement, n = 100)\n" + format_table(rows))
