"""Figure 12: data blocks left without redundancy under minimal maintenance."""

from __future__ import annotations

from repro.simulation.experiments import vulnerable_data_experiment
from repro.simulation.metrics import format_table


def _by_scheme(rows, disaster):
    return {
        row["scheme"]: row["vulnerable data (blocks)"]
        for row in rows
        if row["disaster (%)"] == disaster
    }


def test_fig12_vulnerable_data(benchmark, experiment_config, print_tables):
    rows = benchmark.pedantic(
        vulnerable_data_experiment, args=(experiment_config,), rounds=1, iterations=1
    )

    at30 = _by_scheme(rows, 30)
    at50 = _by_scheme(rows, 50)
    # RS codes with thin margins leave a large share of the data unprotected
    # under minimal maintenance; AE codes with alpha >= 2 keep most blocks
    # protected (each block carries its own parities).
    assert at30["RS(10,4)"] > at30["AE(3,2,5)"]
    assert at30["RS(8,2)"] > at30["AE(2,2,5)"]
    assert at50["RS(10,4)"] > at50["AE(3,2,5)"]
    # RS(4,12) is the only RS setting comparable to the AE protection levels.
    assert at30["RS(4,12)"] < at30["RS(10,4)"]
    assert at50["RS(4,12)"] <= at50["AE(2,2,5)"]

    if print_tables:
        print(
            f"\nFig. 12 - blocks without redundancy ({experiment_config.data_blocks} data blocks)\n"
            + format_table(rows)
        )
