"""Extension bench: analytic (Markov) reliability cross-check of Sec. IV-B1.

Regenerates the entangled-mirror vs mirroring comparison with closed-form
CTMC models and reports MTTDL for the RS settings of Table IV, so the
Monte-Carlo results of ``bench_entangled_mirror_reliability`` have an
independent analytic counterpart.
"""

from __future__ import annotations

from repro.analysis.markov import (
    HOURS_PER_YEAR,
    five_year_loss_table,
    kofn_chain,
    mttdl,
)
from repro.simulation.metrics import format_table

MTTF_HOURS = 50_000.0
MTTR_HOURS = 168.0


def test_five_year_markov_table(benchmark, print_tables):
    rows = benchmark(five_year_loss_table, MTTF_HOURS, MTTR_HOURS, 10)
    by_layout = {row["layout"]: row for row in rows}
    mirror = by_layout["mirroring"]["5-year loss probability"]
    entangled = by_layout["entangled mirror (open chain)"]["5-year loss probability"]
    # Section IV-B1 shape: the open entangled chain cuts the loss probability
    # by a large factor (the paper quotes ~90%).
    assert entangled < 0.5 * mirror
    if print_tables:
        print("\nMarkov 5-year loss probability\n" + format_table(rows))


def test_mttdl_by_rs_setting(benchmark, print_tables):
    def build_rows():
        rows = []
        for k, m in ((10, 4), (8, 2), (5, 5), (4, 12)):
            chain = kofn_chain(k, m, MTTF_HOURS, MTTR_HOURS)
            rows.append(
                {
                    "scheme": f"RS({k},{m})",
                    "tolerated failures": m,
                    "MTTDL (years)": round(mttdl(chain) / HOURS_PER_YEAR, 1),
                }
            )
        return rows

    rows = benchmark(build_rows)
    by_scheme = {row["scheme"]: row for row in rows}
    # More parity means a longer MTTDL; RS(4,12) dominates.
    assert by_scheme["RS(4,12)"]["MTTDL (years)"] > by_scheme["RS(10,4)"]["MTTDL (years)"]
    assert by_scheme["RS(10,4)"]["MTTDL (years)"] > by_scheme["RS(8,2)"]["MTTDL (years)"]
    if print_tables:
        print("\nMTTDL per RS setting (single-stripe chain)\n" + format_table(rows))
