"""Shared configuration for the benchmark harnesses.

Every benchmark regenerates one table or figure of the paper.  The disaster
simulations default to a reduced scale (``REPRO_BENCH_BLOCKS`` data blocks,
100,000 by default) so the whole suite runs in minutes; set the environment
variable ``REPRO_BENCH_BLOCKS=1000000`` to reproduce the paper's full scale.

Each benchmark prints the regenerated table after timing it, so running
``pytest benchmarks/ --benchmark-only -s`` shows the reproduced numbers.
"""

from __future__ import annotations

import os

import pytest

from repro.simulation.experiments import ExperimentConfig


def bench_blocks() -> int:
    return int(os.environ.get("REPRO_BENCH_BLOCKS", "100000"))


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    """Configuration used by the disaster-recovery benchmarks."""
    return ExperimentConfig.quick(bench_blocks())


@pytest.fixture(scope="session")
def print_tables() -> bool:
    return os.environ.get("REPRO_BENCH_QUIET", "") == ""
