"""Figure 13: what part of the repairs are single-failure repairs?"""

from __future__ import annotations

from repro.simulation.experiments import single_failure_experiment
from repro.simulation.metrics import format_table


def test_fig13_single_failures(benchmark, experiment_config, print_tables):
    rows = benchmark.pedantic(
        single_failure_experiment, args=(experiment_config,), rounds=1, iterations=1
    )
    by_scheme = {}
    for row in rows:
        by_scheme.setdefault(row["scheme"], {})[row["disaster (%)"]] = row[
            "single failures (% of repairs)"
        ]

    # AE codes repair the vast majority of lost data blocks in the first
    # round with plain two-block single-failure repairs.
    for scheme in ("AE(2,2,5)", "AE(3,2,5)"):
        assert by_scheme[scheme][10] > 80
        assert by_scheme[scheme][50] > 40
    # Higher alpha means more blocks are fixed in the first round.
    assert by_scheme["AE(3,2,5)"][30] >= by_scheme["AE(2,2,5)"][30] - 1
    # For RS(4,12) the share of (expensive) single-failure repairs shrinks as
    # disasters grow, which is when RS repair amortises best.
    assert by_scheme["RS(4,12)"][10] > by_scheme["RS(4,12)"][50]

    if print_tables:
        print(
            f"\nFig. 13 - single failure repairs ({experiment_config.data_blocks} data blocks)\n"
            + format_table(rows)
        )
