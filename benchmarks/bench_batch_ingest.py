"""Single-block vs. batched ingest throughput (the write path of Fig. 10).

The paper argues AE encoding is lightweight because it is "essentially based
on exclusive-or operations"; this benchmark quantifies how much of the
remaining cost is Python per-block machinery by comparing

* the sequential encoder (``Entangler.entangle`` per 4 KiB block) against the
  vectorised ``BatchEntangler.entangle_batch``, across block sizes and
  AE(alpha, s, p) settings, and
* the per-block store path (``EntangledStorageSystem.put``) against the
  batched zero-copy pipeline (``put_stream``) end to end.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch_ingest.py -q -s

``test_batch_encode_speedup_at_4k`` is the acceptance gate: batched encoding
must be at least 3x faster than the per-block path at 4 KiB blocks while
producing bit-identical parities.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from perf_record import record_entry
from repro.core.encoder import BatchEntangler, Entangler
from repro.core.parameters import AEParameters
from repro.system.entangled_store import EntangledStorageSystem

SPECS = ["AE(1,-,-)", "AE(2,2,5)", "AE(3,2,5)"]
BLOCK_SIZES = [1024, 4096, 16384]
BATCH_BLOCKS = 1024


def data_matrix(blocks: int, block_size: int) -> np.ndarray:
    rng = np.random.default_rng(0)
    return rng.integers(0, 256, size=(blocks, block_size), dtype=np.uint8)


def best_of(fn, repeat: int = 5) -> float:
    fn()  # warm-up: first calls pay page-fault cost for fresh batch matrices
    best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


@pytest.mark.parametrize("spec", SPECS)
@pytest.mark.parametrize("block_size", BLOCK_SIZES)
def test_sequential_encode(benchmark, spec, block_size):
    params = AEParameters.parse(spec)
    data = data_matrix(BATCH_BLOCKS, block_size)

    def encode():
        encoder = Entangler(params, block_size)
        for row in data:
            encoder.entangle(row)
        return encoder.blocks_encoded

    assert benchmark(encode) == BATCH_BLOCKS
    benchmark.extra_info["MB per run"] = BATCH_BLOCKS * block_size / 1e6


@pytest.mark.parametrize("spec", SPECS)
@pytest.mark.parametrize("block_size", BLOCK_SIZES)
def test_batched_encode(benchmark, spec, block_size):
    params = AEParameters.parse(spec)
    data = data_matrix(BATCH_BLOCKS, block_size)

    def encode():
        encoder = BatchEntangler(params, block_size)
        encoder.entangle_batch(data)
        return encoder.blocks_encoded

    assert benchmark(encode) == BATCH_BLOCKS
    benchmark.extra_info["MB per run"] = BATCH_BLOCKS * block_size / 1e6


@pytest.mark.parametrize("spec", SPECS)
def test_store_path_put(benchmark, spec):
    params = AEParameters.parse(spec)
    payload = data_matrix(512, 4096).tobytes()

    def ingest():
        system = EntangledStorageSystem(params, location_count=50, block_size=4096)
        return system.put("doc", payload).block_count

    assert benchmark(ingest) == 512


@pytest.mark.parametrize("spec", SPECS)
def test_store_path_put_stream(benchmark, spec):
    params = AEParameters.parse(spec)
    payload = data_matrix(512, 4096).tobytes()

    def ingest():
        system = EntangledStorageSystem(params, location_count=50, block_size=4096)
        return system.put_stream("doc", [payload]).block_count

    assert benchmark(ingest) == 512


def test_batch_encode_speedup_at_4k(print_tables):
    """Acceptance gate: >= 3x encode throughput at 4 KiB, bit-identical output."""
    params = AEParameters.triple(2, 5)
    block_size = 4096
    data = data_matrix(2048, block_size)

    def run_sequential():
        encoder = Entangler(params, block_size)
        for row in data:
            encoder.entangle(row)

    t_sequential = best_of(run_sequential)
    t_batched = best_of(lambda: BatchEntangler(params, block_size).entangle_batch(data))
    speedup = t_sequential / t_batched

    # Bit-identical parities: same ids, same payloads, for the same input.
    sequential = Entangler(params, block_size)
    batched = BatchEntangler(params, block_size)
    expected = [sequential.entangle(row) for row in data[:256]]
    produced = batched.entangle_batch(data[:256]).encoded_blocks()
    for want, got in zip(expected, produced):
        assert want.data_id == got.data_id
        assert [p.block_id for p in want.parities] == [p.block_id for p in got.parities]
        for wp, gp in zip(want.parities, got.parities):
            assert np.array_equal(wp.payload, gp.payload)

    if print_tables:
        mb = data.nbytes / 1e6
        print(
            f"\nAE(3,2,5) @ 4 KiB: sequential {mb / t_sequential:7.1f} MB/s, "
            f"batched {mb / t_batched:7.1f} MB/s, speedup {speedup:.1f}x"
        )
    mb = data.nbytes / 1e6
    record_entry(
        "ingest",
        "ae-3-2-5/batch-encode-speedup@4096",
        scheme="ae-3-2-5",
        block_size=block_size,
        seed=0,
        metrics={
            "speedup": speedup,
            "batched_mb_s": mb / t_batched,
            "sequential_mb_s": mb / t_sequential,
        },
        gates=["speedup"],
    )
    assert speedup >= 3.0, f"batched encode only {speedup:.2f}x faster than per-block"


def test_end_to_end_stream_speedup(print_tables):
    """The batched store path must beat per-block ingestion.

    Since the scheme-agnostic refactor both ``put`` and ``put_stream`` ride
    the vectorised ``entangle_batch`` + bulk ``put_many`` path, so the
    per-block baseline is ``append_block`` (one ``entangle`` + per-block
    cluster write per call), the pre-batching write path.
    """
    params = AEParameters.triple(2, 5)
    blocks = data_matrix(2048, 4096)
    payload = blocks.tobytes()

    def run_per_block():
        system = EntangledStorageSystem(params, location_count=50, block_size=4096)
        for row in blocks:
            system.append_block(row)

    def run_stream():
        system = EntangledStorageSystem(params, location_count=50, block_size=4096)
        system.put_stream("doc", [payload])

    t_block = best_of(run_per_block, repeat=3)
    t_stream = best_of(run_stream, repeat=3)
    if print_tables:
        mb = len(payload) / 1e6
        print(
            f"\nstore path @ 4 KiB: append_block {mb / t_block:6.1f} MB/s, "
            f"put_stream {mb / t_stream:6.1f} MB/s, speedup {t_block / t_stream:.1f}x"
        )
    # Loose bound: wall-clock ratios on shared machines are noisy; the hard
    # acceptance gate is the encode-throughput test above.
    assert t_block / t_stream >= 1.2, "batched ingest should beat per-block writes"
