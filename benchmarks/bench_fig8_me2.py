"""Figure 8: |ME(2)| as a function of p for four code settings.

The paper's message: |ME(2)| grows with both s and p, and is minimal when
s = p.  The benchmark regenerates the four curves with the exhaustive pattern
search and cross-checks them against the closed-form family sizes.
"""

from __future__ import annotations

from repro.analysis.fault_tolerance import FIGURE8_P_RANGE, FIGURE8_SETTINGS, me2_family_size, me_curves
from repro.core.parameters import AEParameters
from repro.simulation.metrics import format_table


def test_fig8_me2_curves(benchmark, print_tables):
    curves = benchmark.pedantic(
        me_curves, args=(2,), kwargs={"method": "search"}, rounds=1, iterations=1
    )
    rows = [row for curve in curves for row in curve.as_rows()]
    by_setting = {curve.label(): curve.points for curve in curves}

    # Shape assertions (paper, Fig. 8): monotone growth with p, and the search
    # agrees with the chain-family sizes 2 + p + (alpha - 1) * s.
    for (alpha, s) in FIGURE8_SETTINGS:
        points = by_setting[f"AE({alpha},{s},p)"]
        values = [size for p, size in sorted(points.items()) if size is not None]
        assert values == sorted(values)
        for p, size in points.items():
            if size is None:
                continue
            assert size == me2_family_size(AEParameters(alpha, s, p))
    # Larger s gives larger patterns at equal p (fault tolerance grows with s).
    assert by_setting["AE(3,3,p)"][4] > by_setting["AE(3,2,p)"][4]
    assert by_setting["AE(2,3,p)"][4] > by_setting["AE(2,2,p)"][4]

    if print_tables:
        print("\nFig. 8 - |ME(2)| vs p\n" + format_table(rows))
