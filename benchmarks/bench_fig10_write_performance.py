"""Figure 10: full-write parallelism for p > s versus s = p."""

from __future__ import annotations

from repro.analysis.write_performance import compare_settings, figure10_comparison
from repro.simulation.metrics import format_table


def test_fig10_sealed_buckets(benchmark, print_tables):
    points = benchmark(figure10_comparison, 60)
    unequal, equal = points
    # Paper's message: s = p seals every bucket at arrival; p > s cannot.
    assert equal.sealed_fraction == 1.0
    assert unequal.sealed_fraction < 1.0
    if print_tables:
        print("\nFig. 10 - sealed buckets\n" + format_table([p.as_row() for p in points]))


def test_fig10_sweep_over_p(benchmark, print_tables):
    """Extension: sealing fraction for a sweep of p at fixed alpha = 3, s = 5."""
    points = benchmark(compare_settings, 3, 5, [5, 6, 8, 10, 15], 60)
    fractions = [point.sealed_fraction for point in points]
    assert fractions[0] == 1.0
    # Paper's claim is qualitative: only s = p seals every bucket at arrival;
    # any p > s defers a non-zero fraction (the exact fraction is not monotone
    # in p because the wrap-around distance p // s changes in steps).
    assert all(fraction < 1.0 for fraction in fractions[1:])
    if print_tables:
        print("\nFig. 10 (sweep) - sealing vs p\n" + format_table([p.as_row() for p in points]))
