"""Figures 6 and 7: primitive and complex minimal-erasure forms."""

from __future__ import annotations

from repro.analysis.erasure_patterns import (
    is_minimal_erasure,
    primitive_form_one,
    primitive_form_two,
)
from repro.analysis.fault_tolerance import complex_form_catalogue
from repro.core.parameters import AEParameters
from repro.simulation.metrics import format_table


def test_fig6_primitive_forms(benchmark, print_tables):
    """Fig. 6: the two primitive forms of single entanglements (sizes 3 and 6)."""

    def build_and_validate():
        params = AEParameters.single()
        form_one = primitive_form_one()
        form_two = primitive_form_two(gap=4)
        assert is_minimal_erasure(form_one, params)
        assert is_minimal_erasure(form_two, params)
        return form_one.size, form_two.size

    sizes = benchmark(build_and_validate)
    assert sizes == (3, 6)
    if print_tables:
        print(f"\nFig. 6 - primitive forms: |ME(2)| = {sizes[0]} (form I), {sizes[1]} (form II)")


def test_fig7_complex_forms(benchmark, print_tables):
    """Fig. 7: complex forms A-D found by the exhaustive pattern search."""
    rows = benchmark(complex_form_catalogue, "search")
    values = {row["setting"]: row["|ME(2)|"] for row in rows}
    assert values["AE(2,1,1)"] == 4
    assert values["AE(3,1,1)"] == 5
    assert values["AE(3,1,4)"] == 8
    assert values["AE(3,4,4)"] == 14
    if print_tables:
        print("\nFig. 7 - complex forms\n" + format_table(rows))
