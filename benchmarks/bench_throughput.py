"""Encoder/decoder throughput micro-benchmarks.

The paper positions AE codes as lightweight ("essentially based on
exclusive-or operations"); these benchmarks measure the XOR entangler and the
repair path against the GF(2^8) Reed-Solomon baseline on the same machine.
Absolute numbers are machine-specific; the expected shape is that AE encoding
is substantially faster per byte than RS encoding and that a single-failure
repair touches only two blocks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codes.reed_solomon import ReedSolomonCode
from repro.core.blocks import DataId
from repro.core.decoder import Decoder
from repro.core.encoder import Entangler
from repro.core.parameters import AEParameters

BLOCK_SIZE = 64 * 1024
BLOCKS_PER_RUN = 64


def _payloads(count: int, size: int = BLOCK_SIZE):
    rng = np.random.default_rng(0)
    return [rng.integers(0, 256, size=size, dtype=np.uint8) for _ in range(count)]


@pytest.mark.parametrize("spec", ["AE(1,-,-)", "AE(2,2,5)", "AE(3,2,5)"])
def test_ae_encoding_throughput(benchmark, spec):
    params = AEParameters.parse(spec)
    payloads = _payloads(BLOCKS_PER_RUN)

    def encode_batch():
        encoder = Entangler(params, block_size=BLOCK_SIZE)
        for payload in payloads:
            encoder.entangle(payload)
        return encoder.blocks_encoded

    encoded = benchmark(encode_batch)
    assert encoded == BLOCKS_PER_RUN
    benchmark.extra_info["MB per run"] = BLOCKS_PER_RUN * BLOCK_SIZE / 1e6


@pytest.mark.parametrize("setting", [(10, 4), (4, 12)])
def test_rs_encoding_throughput(benchmark, setting):
    k, m = setting
    code = ReedSolomonCode(k, m)
    stripes = max(BLOCKS_PER_RUN // k, 1)
    data = _payloads(k)

    def encode_batch():
        total = 0
        for _ in range(stripes):
            total += len(code.encode(data))
        return total

    produced = benchmark(encode_batch)
    assert produced == stripes * m
    benchmark.extra_info["MB per run"] = stripes * k * BLOCK_SIZE / 1e6


def test_ae_single_failure_repair_throughput(benchmark):
    params = AEParameters.triple(2, 5)
    encoder = Entangler(params, block_size=BLOCK_SIZE)
    store = {}
    for payload in _payloads(BLOCKS_PER_RUN):
        encoded = encoder.entangle(payload)
        for block in encoded.all_blocks():
            store[block.block_id] = block.payload
    victim = DataId(BLOCKS_PER_RUN // 2)
    original = store.pop(victim)
    decoder = Decoder(encoder.lattice, store.get, BLOCK_SIZE)

    repaired = benchmark(decoder.repair, victim)
    assert np.array_equal(repaired, original)


def test_rs_single_failure_repair_throughput(benchmark):
    code = ReedSolomonCode(10, 4)
    data = _payloads(10)
    parities = code.encode(data)
    stripe = {index: payload for index, payload in enumerate(data)}
    stripe.update({10 + index: payload for index, payload in enumerate(parities)})
    available = dict(stripe)
    del available[5]

    repaired = benchmark(code.repair, 5, available)
    assert np.array_equal(repaired, stripe[5])
