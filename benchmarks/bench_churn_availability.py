"""Extension bench: availability under p2p churn (the paper's motivating setting).

Replays a synthetic peer-availability trace over the scheme models and
reports mean availability (in nines), outage block-hours and the data that
would be lost if the trace's final offline set never returned.  The shape to
reproduce is the combinatorial-effect argument of Sec. V-C: at equal storage
overhead, coded schemes reach far more nines than replication when peers are
reasonably available.
"""

from __future__ import annotations

import os

from repro.core.parameters import AEParameters
from repro.simulation.churn import ChurnConfig, ChurnSimulator
from repro.simulation.metrics import format_table
from repro.simulation.traces import TraceStatistics, p2p_session_trace

NODES = 40
HORIZON_HOURS = 240.0
DATA_BLOCKS = int(os.environ.get("REPRO_BENCH_CHURN_BLOCKS", "5000"))

SCHEMES = (
    AEParameters.single(),
    AEParameters.double(2, 5),
    AEParameters.triple(2, 5),
    (8, 2),
    (5, 5),
    2,
    3,
)


def run_churn_comparison():
    trace = p2p_session_trace(
        NODES,
        HORIZON_HOURS,
        mean_session_hours=18.0,
        mean_downtime_hours=6.0,
        seed=17,
    )
    simulator = ChurnSimulator(
        trace, ChurnConfig(data_blocks=DATA_BLOCKS, sample_every_hours=12.0, seed=1)
    )
    return trace, [result for result in simulator.run_many(SCHEMES)]


def test_churn_availability(benchmark, print_tables):
    trace, results = benchmark(run_churn_comparison)
    by_scheme = {result.scheme: result for result in results}
    # Equal-overhead comparison (100%): the coded schemes beat 2-way replication.
    assert by_scheme["RS(5,5)"].mean_availability >= by_scheme["2-way replication"].mean_availability
    assert by_scheme["AE(2,2,5)"].mean_availability >= by_scheme["2-way replication"].mean_availability
    # More entanglement never hurts availability.
    assert by_scheme["AE(3,2,5)"].mean_availability >= by_scheme["AE(1,-,-)"].mean_availability
    if print_tables:
        print("\nTrace statistics\n" + format_table([TraceStatistics.of(trace).as_row()]))
        print("\nAvailability under churn\n" + format_table([r.as_row() for r in results]))
