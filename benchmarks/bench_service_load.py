"""Concurrent service front-end and metadata-WAL acceptance benchmarks.

Two gates, recorded into ``BENCH_service.json`` (docs/benchmarks.md):

* ``test_frontend_scales_with_clients`` -- the closed-loop multi-client
  workload (think time 1 ms) against the thread-pool front-end must push at
  least 3x the ops/sec of a single closed-loop client on the same service
  (memory backend: the scaling comes from overlapping think time and request
  handling, the front-end's job);
* ``test_wal_group_commit_speeds_up_metadata`` -- metadata-only mutations
  (empty-payload puts: a catalogue entry and a scheme-state record, no block
  IO) against a fsync'd disk-backed service with a warm catalogue: the
  group-committed metadata WAL under 8 concurrent writers must commit at
  least 5x faster than the legacy rewrite-``manifest.json``-per-mutation
  mode single-threaded (the tentpole: O(delta) appends + one fsync per
  commit *group* versus an O(catalogue) JSON rewrite + fsync per mutation).

``REPRO_BENCH_SMOKE=1`` shrinks the workloads and relaxes the in-test floors
for CI smoke runs; the regression gate proper is the BENCH snapshot compare
(``perf_record.py``).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_service_load.py -q -s \
        --benchmark-disable
"""

from __future__ import annotations

import os
import time

from perf_record import record_entry

from repro.system.frontend import ConcurrentStorageService
from repro.system.loadgen import run_load
from repro.system.service import StorageConfig, StorageService

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

SCHEME = "ae-3-2-5"
SEED = 7
BLOCK_SIZE = 512
CLIENTS = 8
THINK_SECONDS = 0.001

#: Closed-loop scaling run (memory backend).
LOAD_OPS_PER_CLIENT = 30 if _SMOKE else 80
LOAD_PAYLOAD = 2048
LOAD_DOCUMENTS = 32

#: Metadata-commit run (disk backend, fsync on).
WARM_DOCUMENTS = 64 if _SMOKE else 256
COMMITS = 48 if _SMOKE else 96


def _run_clients(clients: int):
    frontend = ConcurrentStorageService.open(
        StorageConfig(
            scheme=SCHEME, location_count=16, block_size=BLOCK_SIZE, seed=SEED
        ),
        workers=CLIENTS,
    )
    try:
        return run_load(
            frontend,
            clients=clients,
            ops_per_client=LOAD_OPS_PER_CLIENT,
            payload_bytes=LOAD_PAYLOAD,
            documents=LOAD_DOCUMENTS,
            think_seconds=THINK_SECONDS,
            seed=SEED,
        )
    finally:
        frontend.close()


def test_frontend_scales_with_clients(print_tables):
    """Acceptance gate: >= 3x ops/sec at 8 closed-loop clients vs 1."""
    single = _run_clients(1)
    many = _run_clients(CLIENTS)
    speedup = many.ops_per_sec / single.ops_per_sec
    if print_tables:
        print()
        print(f"closed loop, think {THINK_SECONDS * 1e3:.0f} ms [{SCHEME}, memory]:")
        print(f"  1 client : {single.summary()}")
        print(f"  {CLIENTS} clients: {many.summary()}")
        print(f"  scaling  : {speedup:.1f}x")
    record_entry(
        "service",
        f"{SCHEME}/frontend-scaling@{CLIENTS}clients",
        scheme=SCHEME,
        block_size=BLOCK_SIZE,
        seed=SEED,
        metrics={
            "ops_per_sec": many.ops_per_sec,
            "ops_per_sec_single_client": single.ops_per_sec,
            "speedup": speedup,
            "p50_seconds": many.p50_seconds,
            "p99_seconds": many.p99_seconds,
        },
        gates=["speedup", "p99_seconds"],
    )
    floor = 2.0 if _SMOKE else 3.0
    assert speedup >= floor, (
        f"{CLIENTS} closed-loop clients only {speedup:.2f}x one client "
        f"(floor {floor}x); the front-end is not overlapping requests"
    )
    assert many.overloads == 0, "the default queue depth must absorb 8 clients"


def _timed_commits(data_dir: str, wal: bool) -> float:
    """Seconds for ``COMMITS`` metadata commits against a warm catalogue.

    The measured mutations carry empty payloads, so each one is a pure
    metadata commit -- a ``put_doc`` catalogue entry plus the scheme-state
    record, with no block IO in the way.  That isolates exactly the path
    the WAL replaced: the legacy mode rewrites (and fsyncs) the whole
    ``manifest.json`` per mutation, the WAL mode appends O(delta) frames
    and batches the fsyncs of concurrent committers into one group.
    """
    service = StorageService.open(
        StorageConfig(
            scheme=SCHEME,
            location_count=16,
            block_size=BLOCK_SIZE,
            seed=SEED,
            backend="disk",
            data_dir=data_dir,
            fsync=True,
            wal=wal,
        )
    )
    payload = b"\x5a" * BLOCK_SIZE
    for number in range(WARM_DOCUMENTS):
        service.put(f"warm-{number:04d}", payload)
    if wal:
        frontend = ConcurrentStorageService(
            service, workers=CLIENTS, queue_depth=COMMITS
        )
        started = time.perf_counter()
        futures = [
            frontend.put_async(f"bench-{number:04d}", b"")
            for number in range(COMMITS)
        ]
        for future in futures:
            future.result()
        elapsed = time.perf_counter() - started
        frontend.close()
    else:
        started = time.perf_counter()
        for number in range(COMMITS):
            service.put(f"bench-{number:04d}", b"")
        elapsed = time.perf_counter() - started
        service.close()
    return elapsed


def test_wal_group_commit_speeds_up_metadata(tmp_path, print_tables):
    """Acceptance gate: >= 5x metadata-commit throughput, WAL vs manifest."""
    t_manifest = _timed_commits(str(tmp_path / "manifest-mode"), wal=False)
    t_wal = _timed_commits(str(tmp_path / "wal-mode"), wal=True)
    manifest_rate = COMMITS / t_manifest
    wal_rate = COMMITS / t_wal
    speedup = wal_rate / manifest_rate
    if print_tables:
        print()
        print(f"{COMMITS} incremental commits over {WARM_DOCUMENTS} warm docs "
              f"[{SCHEME}, disk, fsync]:")
        print(f"  manifest-per-mutation (1 writer) : {manifest_rate:7.1f} commits/s")
        print(f"  WAL group commit ({CLIENTS} writers)     : {wal_rate:7.1f} commits/s")
        print(f"  speedup                          : {speedup:.1f}x")
    record_entry(
        "service",
        f"{SCHEME}/wal-group-commit@disk-fsync",
        scheme=SCHEME,
        block_size=BLOCK_SIZE,
        seed=SEED,
        metrics={
            "commits_per_sec": wal_rate,
            "commits_per_sec_manifest": manifest_rate,
            "speedup": speedup,
        },
        gates=["speedup"],
    )
    floor = 3.0 if _SMOKE else 5.0
    assert speedup >= floor, (
        f"WAL group commit only {speedup:.2f}x the per-mutation manifest "
        f"rewrite (floor {floor}x)"
    )
