"""Live scheme-transition acceptance benchmarks.

Two entries, recorded into ``BENCH_transition.json`` (docs/benchmarks.md):

* ``test_transition_chain_throughput`` -- the canonical chain
  ``rep-3 -> ae-3-2-5 -> rs-10-4`` against a disk-backed durable service:
  every hop is timed end to end (plan persisted, documents re-encoded
  copy-commit-before-delete, plan settled) and every document must read
  back byte-exact after every hop.  Migration throughput in documents/s
  is the regression-gated metric; MB/s rides along informationally.
* ``test_reads_stay_live_during_transition`` -- the zero-downtime claim,
  measured: reader threads hammer ``get`` while the concurrent front-end
  migrates the namespace underneath them.  Every read must succeed and
  match byte-for-byte; the read p99 observed *during* the migration is
  recorded informationally (``gates=[]`` -- wall-clock latency under a
  concurrent migration is too host-dependent to gate, the byte-exactness
  and zero-error floors are asserted in-test instead).

``REPRO_BENCH_SMOKE=1`` shrinks the workloads for CI smoke runs; the
regression gate proper is the BENCH snapshot compare (``perf_record.py``).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_transition.py -q -s \
        --benchmark-disable
"""

from __future__ import annotations

import os
import random
import threading
import time

from perf_record import record_entry

from repro.exceptions import ReproError
from repro.system.frontend import ConcurrentStorageService
from repro.system.service import StorageConfig, StorageService

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

SOURCE = "rep-3"
CHAIN = ("ae-3-2-5", "rs-10-4")
SEED = 7
BLOCK_SIZE = 1024

CHAIN_DOCS = 4 if _SMOKE else 16
CHAIN_PAYLOAD = 4096 if _SMOKE else 16384

LIVE_DOCS = 4 if _SMOKE else 12
LIVE_PAYLOAD = 4096 if _SMOKE else 8192
LIVE_READERS = 3


def _make_docs(count: int, size: int) -> dict:
    rng = random.Random(SEED)
    return {f"doc-{index:03d}": rng.randbytes(size) for index in range(count)}


def _percentile(samples: list, fraction: float) -> float:
    ordered = sorted(samples)
    return ordered[int(fraction * (len(ordered) - 1))]


def test_transition_chain_throughput(tmp_path, print_tables):
    """Gate: documents/s for the durable rep-3 -> ae -> rs re-encode chain."""
    payloads = _make_docs(CHAIN_DOCS, CHAIN_PAYLOAD)
    service = StorageService.open(
        StorageConfig(
            scheme=SOURCE,
            location_count=24,
            block_size=BLOCK_SIZE,
            seed=SEED,
            backend="disk",
            data_dir=str(tmp_path / "chain"),
        )
    )
    try:
        for name, payload in payloads.items():
            service.put(name, payload)
        migrated = 0
        elapsed = 0.0
        for target in CHAIN:
            started = time.perf_counter()
            report = service.transition_to(target)
            elapsed += time.perf_counter() - started
            assert report is not None, f"-> {target} was unexpectedly a no-op"
            migrated += report.documents_migrated
            for name, payload in payloads.items():
                assert service.get(name) == payload, (
                    f"{name} corrupted after -> {target}"
                )
    finally:
        service.close()
    docs_per_sec = migrated / elapsed
    mb_per_sec = migrated * CHAIN_PAYLOAD / elapsed / 1e6
    if print_tables:
        print()
        print(f"{SOURCE} -> {' -> '.join(CHAIN)}, {CHAIN_DOCS} documents "
              f"x {CHAIN_PAYLOAD} B [disk]:")
        print(f"  migrated : {migrated} documents in {elapsed:.3f} s")
        print(f"  rate     : {docs_per_sec:.1f} docs/s ({mb_per_sec:.1f} MB/s)")
    record_entry(
        "transition",
        f"{SOURCE}->{'->'.join(CHAIN)}/chain",
        scheme=SOURCE,
        block_size=BLOCK_SIZE,
        seed=SEED,
        metrics={
            "docs_per_sec": docs_per_sec,
            "mb_per_sec": mb_per_sec,
            "documents_migrated": float(migrated),
        },
        gates=["docs_per_sec"],
    )
    assert migrated == len(CHAIN) * CHAIN_DOCS, (
        "every hop must re-encode every document exactly once"
    )


def test_reads_stay_live_during_transition(print_tables):
    """Zero downtime, measured: reads stay byte-exact while migrating."""
    payloads = _make_docs(LIVE_DOCS, LIVE_PAYLOAD)
    frontend = ConcurrentStorageService.open(
        StorageConfig(
            scheme=SOURCE, location_count=24, block_size=BLOCK_SIZE, seed=SEED
        ),
        workers=LIVE_READERS + 1,
    )
    latencies: list = []
    errors: list = []
    stop = threading.Event()
    lock = threading.Lock()

    def reader(worker_seed: int) -> None:
        rng = random.Random(worker_seed)
        names = list(payloads)
        while not stop.is_set():
            name = rng.choice(names)
            started = time.perf_counter()
            try:
                observed = frontend.get(name)
            except (ReproError, ValueError, KeyError, OSError) as exc:
                with lock:
                    errors.append(f"{name}: {exc!r}")
                return
            took = time.perf_counter() - started
            with lock:
                latencies.append(took)
                if observed != payloads[name]:
                    errors.append(f"{name}: stale or corrupt payload")

    try:
        for name, payload in payloads.items():
            frontend.put(name, payload)
        threads = [
            threading.Thread(target=reader, args=(SEED + offset,))
            for offset in range(LIVE_READERS)
        ]
        for thread in threads:
            thread.start()
        started = time.perf_counter()
        for target in CHAIN:
            assert frontend.transition_to(target) is not None
        elapsed = time.perf_counter() - started
        stop.set()
        for thread in threads:
            thread.join()
        for name, payload in payloads.items():
            assert frontend.get(name) == payload
    finally:
        stop.set()
        frontend.close()
    assert not errors, f"reads failed during the live migration: {errors[:3]}"
    assert latencies, "the readers never got a read in edgewise"
    p50 = _percentile(latencies, 0.50)
    p99 = _percentile(latencies, 0.99)
    if print_tables:
        print()
        print(f"{LIVE_READERS} readers during {SOURCE} -> "
              f"{' -> '.join(CHAIN)} [memory, {elapsed:.3f} s]:")
        print(f"  reads    : {len(latencies)} ok, {len(errors)} failed")
        print(f"  latency  : p50 {p50 * 1e3:.2f} ms, p99 {p99 * 1e3:.2f} ms")
    record_entry(
        "transition",
        f"{SOURCE}->{'->'.join(CHAIN)}/live-reads",
        scheme=SOURCE,
        block_size=BLOCK_SIZE,
        seed=SEED,
        metrics={
            "reads_ok": float(len(latencies)),
            "read_p50_seconds": p50,
            "read_p99_seconds": p99,
        },
        gates=[],
    )
