"""Table VI: number of repair rounds needed by the AE decoder per disaster size."""

from __future__ import annotations

from repro.simulation.experiments import repair_rounds_experiment
from repro.simulation.metrics import format_table


def test_table6_repair_rounds(benchmark, experiment_config, print_tables):
    rows = benchmark.pedantic(
        repair_rounds_experiment, args=(experiment_config,), rounds=1, iterations=1
    )
    by_code = {row["code"]: row for row in rows}

    # Rounds grow with disaster size for every setting (paper, Table VI).
    for code, row in by_code.items():
        assert row["10%"] <= row["30%"] <= row["50%"] + 1
        assert 1 <= row["10%"] <= 15
        assert row["50%"] <= 60
    # AE(3,2,5) needs no more rounds than AE(2,2,5) on the largest disasters
    # (more strands give the decoder more ways to make progress per round).
    assert by_code["AE(3,2,5)"]["50%"] <= by_code["AE(2,2,5)"]["50%"]

    if print_tables:
        print(
            f"\nTable VI - repair rounds ({experiment_config.data_blocks} data blocks)\n"
            + format_table(rows)
        )
