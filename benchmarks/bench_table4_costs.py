"""Table IV: additional storage and single-failure repair cost per scheme."""

from __future__ import annotations

from repro.simulation.experiments import costs_table
from repro.simulation.metrics import format_table


def test_table4_scheme_costs(benchmark, print_tables):
    rows = benchmark(costs_table)
    table = {row["scheme"]: row for row in rows}
    # Sanity of the regenerated table (the paper's Table IV rows).
    assert table["RS(10,4)"]["additional storage (%)"] == 40.0
    assert table["RS(8,2)"]["additional storage (%)"] == 25.0
    assert table["RS(5,5)"]["additional storage (%)"] == 100.0
    assert table["RS(4,12)"]["additional storage (%)"] == 300.0
    assert table["AE(1,-,-)"]["single-failure repair (blocks read)"] == 2
    assert table["AE(3,2,5)"]["single-failure repair (blocks read)"] == 2
    if print_tables:
        print("\nTable IV - redundancy scheme costs\n" + format_table(rows))


def test_table4_measured_repair_reads_match_analytics(print_tables):
    """Single-failure repair reads measured on the live compare path.

    The same workload is written through every scheme's ``StorageService``,
    one data block is masked from the block source and repaired through the
    scheme's real decode path; the measured read count must equal the
    analytic ``CodeCosts`` row for single failures (AE reads 2 blocks
    regardless of the setting, RS(k,m) reads k, LRC reads its local group,
    replication reads one copy).
    """
    from repro.system.compare import compare_schemes

    results = compare_schemes(
        ("ae-3-2-5", "ae-2-2-5", "rs-10-4", "rs-8-2", "lrc-azure",
         "lrc-xorbas", "rep-3", "xor-geo"),
        data_blocks=120,
        block_size=512,
        location_count=50,
        fail_locations=2,
        seed=11,
    )
    for result in results:
        assert result.measured_single_failure_reads == result.analytic.single_failure_cost, (
            result.scheme_id,
            result.measured_single_failure_reads,
            result.analytic.single_failure_cost,
        )
        assert abs(
            result.measured_storage_percent - result.analytic.additional_storage_percent
        ) < 0.1, (result.scheme_id, result.measured_storage_percent)
    if print_tables:
        print(
            "\nTable IV - measured (live compare path) vs analytic\n"
            + format_table([result.as_row() for result in results])
        )
