"""Table IV: additional storage and single-failure repair cost per scheme."""

from __future__ import annotations

from repro.simulation.experiments import costs_table
from repro.simulation.metrics import format_table


def test_table4_scheme_costs(benchmark, print_tables):
    rows = benchmark(costs_table)
    table = {row["scheme"]: row for row in rows}
    # Sanity of the regenerated table (the paper's Table IV rows).
    assert table["RS(10,4)"]["additional storage (%)"] == 40.0
    assert table["RS(8,2)"]["additional storage (%)"] == 25.0
    assert table["RS(5,5)"]["additional storage (%)"] == 100.0
    assert table["RS(4,12)"]["additional storage (%)"] == 300.0
    assert table["AE(1,-,-)"]["single-failure repair (blocks read)"] == 2
    assert table["AE(3,2,5)"]["single-failure repair (blocks read)"] == 2
    if print_tables:
        print("\nTable IV - redundancy scheme costs\n" + format_table(rows))
