"""Ablation bench: locality / repair-cost trade-off of AE vs LRC vs RS.

The paper argues RS(4,12) is the only RS setting whose locality approaches
AE's fixed two-block repairs and that it beats "locally repairable codes like
the HDFS-Xorbas implementation".  This bench puts the three families side by
side: single-failure repair reads, storage overhead and encoding throughput.
"""

from __future__ import annotations

import numpy as np

from repro.codes.lrc import LocalReconstructionCode, azure_lrc, xorbas_lrc
from repro.codes.reed_solomon import ReedSolomonCode
from repro.core.parameters import AEParameters
from repro.simulation.metrics import format_table

BLOCK_SIZE = 16 * 1024


def locality_rows():
    rows = []
    for params in (AEParameters.single(), AEParameters.double(2, 5), AEParameters.triple(2, 5)):
        rows.append(
            {
                "scheme": params.spec(),
                "additional storage (%)": params.alpha * 100.0,
                "single-failure reads": params.single_failure_cost,
            }
        )
    for code in (xorbas_lrc(), azure_lrc(), LocalReconstructionCode(12, 4, 2)):
        rows.append(
            {
                "scheme": code.name,
                "additional storage (%)": round(code.storage_overhead * 100.0, 1),
                "single-failure reads": code.single_failure_cost,
            }
        )
    for k, m in ((10, 4), (4, 12)):
        code = ReedSolomonCode(k, m)
        rows.append(
            {
                "scheme": code.name,
                "additional storage (%)": round(code.storage_overhead * 100.0, 1),
                "single-failure reads": code.single_failure_cost,
            }
        )
    return rows


def test_locality_table(benchmark, print_tables):
    rows = benchmark(locality_rows)
    by_scheme = {row["scheme"]: row for row in rows}
    # AE repairs with 2 reads; LRC with k/l; RS with k.  The ordering must hold.
    assert (
        by_scheme["AE(3,2,5)"]["single-failure reads"]
        < by_scheme["LRC(10,2,4)"]["single-failure reads"]
        < by_scheme["RS(10,4)"]["single-failure reads"]
    )
    if print_tables:
        print("\nLocality / storage trade-off\n" + format_table(rows))


def test_lrc_encode_throughput(benchmark):
    """Encoding throughput of the LRC baseline (GF(2^8) globals dominate)."""
    code = azure_lrc()
    rng = np.random.default_rng(5)
    stripe = [rng.integers(0, 256, size=BLOCK_SIZE, dtype=np.uint8) for _ in range(code.k)]
    parities = benchmark(code.encode, stripe)
    assert len(parities) == code.m


def test_lrc_local_repair_beats_global_decode(benchmark, print_tables):
    """A single data failure is repaired from the local group only."""
    code = azure_lrc()
    rng = np.random.default_rng(6)
    stripe = [rng.integers(0, 256, size=BLOCK_SIZE, dtype=np.uint8) for _ in range(code.k)]
    parities = code.encode(stripe)
    available = {index: payload for index, payload in enumerate(stripe)}
    available.update({code.k + index: payload for index, payload in enumerate(parities)})
    del available[3]

    def local_repair():
        positions = code.local_repair_positions(3)
        needed = {pos: available[pos] for pos in positions}
        needed_full = dict(available)
        return code.repair(3, needed_full), len(positions)

    repaired, reads = benchmark(local_repair)
    assert np.array_equal(repaired, stripe[3])
    assert reads == code.group_size
    if print_tables:
        print(f"\nLRC local repair of one block reads {reads} blocks (RS would read {code.k})")
