"""Put/get throughput of the pluggable storage backends.

The durable backends trade IO for restartability; this benchmark quantifies
the trade and guards the promise that the write-through LRU read cache keeps
*hot* reads on persistent backends close to memory speed:

* ``test_put_throughput`` / ``test_get_throughput`` time
  :meth:`BlockStore.put_many` / :meth:`BlockStore.get_many` over the memory,
  disk and segment-log backends;
* ``test_cached_disk_reads_within_2x_of_memory`` is the acceptance gate:
  once the LRU cache is warm, ``get_many`` on the disk backends must stay
  within 2x of the pure in-memory store.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_backends.py -q -s --benchmark-disable
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.blocks import DataId
from repro.storage import backends
from repro.storage.block_store import BlockStore

BACKENDS = ["memory", "disk", "segment"]
BLOCKS = 512
BLOCK_SIZE = 4096


def payload_rows(blocks: int = BLOCKS, block_size: int = BLOCK_SIZE) -> np.ndarray:
    rng = np.random.default_rng(7)
    return rng.integers(0, 256, size=(blocks, block_size), dtype=np.uint8)


def make_store(spec: str, root, cache_blocks=None) -> BlockStore:
    backend = backends.get(spec, root=str(root / spec) if spec != "memory" else None)
    return BlockStore(0, backend=backend, cache_blocks=cache_blocks)


def best_of(fn, repeat: int = 5) -> float:
    fn()  # warm-up
    best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


@pytest.mark.parametrize("spec", BACKENDS)
def test_put_throughput(benchmark, spec, tmp_path):
    rows = payload_rows()
    counter = iter(range(1_000_000))

    def ingest():
        store = make_store(spec, tmp_path / f"put-{next(counter)}")
        store.put_many((DataId(i + 1), rows[i]) for i in range(BLOCKS))
        store.close()
        return store.block_count

    assert benchmark(ingest) == BLOCKS
    benchmark.extra_info["MB per run"] = rows.nbytes / 1e6


@pytest.mark.parametrize("spec", BACKENDS)
def test_get_throughput(benchmark, spec, tmp_path):
    rows = payload_rows()
    store = make_store(spec, tmp_path)
    ids = [DataId(i + 1) for i in range(BLOCKS)]
    store.put_many(zip(ids, rows))

    def read():
        return len(store.get_many(ids))

    assert benchmark(read) == BLOCKS
    benchmark.extra_info["MB per run"] = rows.nbytes / 1e6
    store.close()


def test_cached_disk_reads_within_2x_of_memory(print_tables, tmp_path):
    """Acceptance gate: a warm LRU cache hides the persistent-backend IO."""
    rows = payload_rows()
    ids = [DataId(i + 1) for i in range(BLOCKS)]
    timings = {}
    for spec in BACKENDS:
        # Cache every block so the steady state measures the cache path, not
        # the medium (the production default is 1024 blocks per location).
        store = make_store(spec, tmp_path, cache_blocks=BLOCKS)
        store.put_many(zip(ids, rows))
        store.get_many(ids)  # populate the cache
        timings[spec] = best_of(lambda s=store: s.get_many(ids))
        if spec != "memory":
            assert store.cache_hits > 0, "warm reads must be served by the cache"
        store.close()

    mb = rows.nbytes / 1e6
    if print_tables:
        print()
        for spec, elapsed in timings.items():
            print(f"get_many[{spec:7s}] warm: {mb / elapsed:8.1f} MB/s")
    for spec in ("disk", "segment"):
        ratio = timings[spec] / timings["memory"]
        assert ratio <= 2.0, (
            f"cached {spec} reads are {ratio:.2f}x memory (budget: 2x); "
            "the LRU read cache is not doing its job"
        )
