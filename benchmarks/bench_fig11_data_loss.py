"""Figure 11: data blocks the decoder failed to repair, per scheme and disaster size."""

from __future__ import annotations

from repro.simulation.experiments import data_loss_experiment
from repro.simulation.metrics import format_table


def _by_scheme(rows, disaster):
    return {row["scheme"]: row["data loss (blocks)"] for row in rows if row["disaster (%)"] == disaster}


def test_fig11_data_loss(benchmark, experiment_config, print_tables):
    rows = benchmark.pedantic(
        data_loss_experiment, args=(experiment_config,), rounds=1, iterations=1
    )

    # Shape assertions from the paper's discussion of Fig. 11.
    at30 = _by_scheme(rows, 30)
    at50 = _by_scheme(rows, 50)
    slack = experiment_config.data_blocks // 1000
    # AE(3,2,5) outperforms RS(4,12) although both add 300% storage.
    assert at50["AE(3,2,5)"] <= at50["RS(4,12)"] + slack
    # AE(2,2,5) excels compared with 3-way replication (same storage budget).
    assert at30["AE(2,2,5)"] < at30["3-way replication"]
    assert at50["AE(2,2,5)"] < at50["3-way replication"]
    # AE(1) loses roughly an order of magnitude more than RS(5,5) on small
    # disasters but the gap narrows in large ones.
    at10 = _by_scheme(rows, 10)
    assert at10["AE(1,-,-)"] > at10["RS(5,5)"]
    assert at50["AE(1,-,-)"] < 3 * at50["RS(5,5)"]
    # RS quality declines with disaster size relative to replication.
    assert at10["RS(5,5)"] <= at10["3-way replication"]
    assert at50["RS(5,5)"] > at50["3-way replication"]

    if print_tables:
        print(
            f"\nFig. 11 - data loss after repairs ({experiment_config.data_blocks} data blocks)\n"
            + format_table(rows)
        )
