"""Figure 9: |ME(4)| as a function of p.

Paper's message: for alpha = 2 the square pattern pins |ME(4)| at 8 whatever
s and p are; for alpha = 3 the minimal patterns are larger and depend on s.
The exhaustive search reproduces the alpha = 2 plateau exactly; for alpha = 3
it reports the true minima it finds, which for some (s, p) combinations are
smaller than the structured families highlighted in the paper (the paper
explicitly searches only "the most relevant patterns"); both are printed.
"""

from __future__ import annotations

from repro.analysis.fault_tolerance import me4_family_size, me_curves
from repro.core.parameters import AEParameters
from repro.simulation.metrics import format_table

#: A trimmed p-range keeps the exhaustive search fast while covering the trend.
P_VALUES = (2, 3, 4, 5, 6)


def test_fig9_me4_curves(benchmark, print_tables):
    curves = benchmark.pedantic(
        me_curves,
        args=(4,),
        kwargs={"p_values": P_VALUES, "method": "search"},
        rounds=1,
        iterations=1,
    )
    rows = []
    for curve in curves:
        for row in curve.as_rows():
            p = row["p"]
            if row["|ME(4)|"] is not None:
                row["family |ME(4)|"] = me4_family_size(AEParameters(curve.alpha, curve.s, p))
            rows.append(row)
    by_setting = {curve.label(): curve.points for curve in curves}

    # alpha = 2: the square pattern gives a constant 8, independent of s and p.
    for label in ("AE(2,2,p)", "AE(2,3,p)"):
        values = {size for size in by_setting[label].values() if size is not None}
        assert values == {8}
    # alpha = 3 patterns are strictly larger than the alpha = 2 square.
    for label in ("AE(3,2,p)", "AE(3,3,p)"):
        assert all(size > 8 for size in by_setting[label].values() if size is not None)

    if print_tables:
        print("\nFig. 9 - |ME(4)| vs p (search vs structured family)\n" + format_table(rows))
