"""Extension bench: exhaustive MEL cross-check of the Fig. 6/7 pattern sizes.

The lattice-specific minimal-erasure search (``repro.analysis.erasure_patterns``)
plays the role of the authors' Prolog tool.  This bench validates it against a
completely independent implementation: the window of an AE lattice is
flattened into a flat XOR code and the exact Minimal Erasures List is
enumerated by GF(2) rank computations.  Both must agree that single erasures
are always harmless and on the size of the smallest data-losing pattern for
the single-entanglement primitive form.
"""

from __future__ import annotations

from repro.analysis.mel import ae_window_graph
from repro.core.parameters import AEParameters
from repro.simulation.metrics import format_table

WINDOW_NODES = 6
MAX_PATTERN = 3

SETTINGS = ("AE(1,-,-)", "AE(2,1,1)", "AE(2,2,2)")


def mel_rows():
    rows = []
    for spec in SETTINGS:
        params = AEParameters.parse(spec)
        graph = ae_window_graph(params, WINDOW_NODES)
        mel = graph.minimal_erasures(max_size=MAX_PATTERN)
        vector = mel.fault_tolerance_vector(MAX_PATTERN)
        rows.append(
            {
                "setting": spec,
                "symbols in window": graph.n,
                "minimal erasures (size <= 3)": len(mel),
                "smallest pattern": (mel.smallest().size if mel.smallest() else "-"),
                "P(loss | 1 erasure)": round(vector.probability(1), 4),
                "P(loss | 3 erasures)": round(vector.probability(3), 4),
            }
        )
    return rows


def test_mel_crosscheck(benchmark, print_tables):
    rows = benchmark(mel_rows)
    by_setting = {row["setting"]: row for row in rows}
    # No setting loses data from a single erasure.
    assert all(row["P(loss | 1 erasure)"] == 0.0 for row in rows)
    # Single entanglements have 3-block minimal erasures (the interior
    # primitive form I); alpha = 2 pushes the smallest interior pattern past
    # the enumeration bound, so strictly fewer small patterns survive.
    assert by_setting["AE(1,-,-)"]["P(loss | 3 erasures)"] > 0.0
    assert (
        by_setting["AE(2,2,2)"]["P(loss | 3 erasures)"]
        <= by_setting["AE(1,-,-)"]["P(loss | 3 erasures)"]
    )
    if print_tables:
        print("\nMEL cross-check (flattened lattice windows)\n" + format_table(rows))
